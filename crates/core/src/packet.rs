//! Convenience helpers for building packets (control-parameter values)
//! in examples and tests.
//!
//! Runtime values key their record/header fields by interned [`Symbol`]s
//! (the interpreter's hot path never compares field-name strings), so the
//! name-based path helpers here resolve each segment through the typed
//! program's interner — the human-facing boundary.
//!
//! [`Symbol`]: p4bid_ast::intern::Symbol

use p4bid_interp::Value;
use p4bid_typeck::TypedProgram;

/// Zero-initialized argument values for every parameter of a control, in
/// declaration order (headers valid, scalars zero). Returns `None` for an
/// unknown control.
///
/// # Examples
///
/// ```
/// use p4bid::{check, CheckOptions};
/// use p4bid::packet::init_args;
///
/// let typed = check(
///     "header h_t { bit<8> v; } control C(inout h_t h) { apply { } }",
///     &CheckOptions::ifc(),
/// ).unwrap();
/// let args = init_args(&typed, "C").unwrap();
/// assert_eq!(args.len(), 1);
/// ```
#[must_use]
pub fn init_args(typed: &TypedProgram, control: &str) -> Option<Vec<Value>> {
    let ctrl = typed.control(control)?;
    let ctx = typed.ctx.borrow();
    Some(ctrl.params.iter().map(|p| Value::init(&ctx.types, p.ty)).collect())
}

/// Writes `new` at a dotted/indexed `path` (e.g. `"ipv4.ttl"`,
/// `"stack[2].v"`) inside `value`, coercing `int` literals to the target's
/// bit width. Field names resolve through `typed`'s interner. Returns
/// `false` if the path does not exist.
///
/// # Examples
///
/// ```
/// use p4bid::{check, CheckOptions};
/// use p4bid::interp::Value;
/// use p4bid::packet::{get_path, init_args, set_path};
///
/// let typed = check(
///     "header h_t { bit<8> ttl; } control C(inout h_t h) { apply { } }",
///     &CheckOptions::ifc(),
/// ).unwrap();
/// let mut hdr = init_args(&typed, "C").unwrap().remove(0);
/// assert!(set_path(&typed, &mut hdr, "ttl", Value::Int(64)));
/// assert_eq!(get_path(&typed, &hdr, "ttl"), Some(&Value::bit(8, 64)));
/// ```
#[must_use]
pub fn set_path(typed: &TypedProgram, value: &mut Value, path: &str, new: Value) -> bool {
    match parse_segment(path) {
        None => {
            let coerced = new.coerce_to_shape(value);
            *value = coerced;
            true
        }
        Some((Segment::Field(name), rest)) => {
            match typed.sym(&name).and_then(|s| value.field_mut(s)) {
                Some(inner) => set_path(typed, inner, rest, new),
                None => false,
            }
        }
        Some((Segment::Index(ix), rest)) => match value {
            Value::Stack(elems) => match elems.get_mut(ix) {
                Some(inner) => set_path(typed, inner, rest, new),
                None => false,
            },
            _ => false,
        },
    }
}

/// Reads the value at a dotted/indexed `path`.
#[must_use]
pub fn get_path<'v>(typed: &TypedProgram, value: &'v Value, path: &str) -> Option<&'v Value> {
    match parse_segment(path) {
        None => Some(value),
        Some((Segment::Field(name), rest)) => {
            let sym = typed.sym(&name)?;
            get_path(typed, value.field(sym)?, rest)
        }
        Some((Segment::Index(ix), rest)) => match value {
            Value::Stack(elems) => get_path(typed, elems.get(ix)?, rest),
            _ => None,
        },
    }
}

enum Segment {
    Field(String),
    Index(usize),
}

/// Splits the first path segment off; `None` when the path is empty.
fn parse_segment(path: &str) -> Option<(Segment, &str)> {
    let path = path.trim_start_matches('.');
    if path.is_empty() {
        return None;
    }
    if let Some(rest) = path.strip_prefix('[') {
        let close = rest.find(']')?;
        let ix: usize = rest[..close].parse().ok()?;
        return Some((Segment::Index(ix), &rest[close + 1..]));
    }
    let end = path.find(['.', '[']).unwrap_or(path.len());
    Some((Segment::Field(path[..end].to_string()), &path[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check, CheckOptions};

    #[test]
    fn init_args_shapes() {
        let typed = check(
            r#"header h_t { bit<8> a; bool b; }
            struct s_t { h_t h; bit<16>[2] arr; }
            control C(inout s_t s, in bit<32> x) { apply { } }"#,
            &CheckOptions::ifc(),
        )
        .unwrap();
        let args = init_args(&typed, "C").unwrap();
        assert_eq!(args.len(), 2);
        assert_eq!(get_path(&typed, &args[0], "h.a"), Some(&Value::bit(8, 0)));
        assert_eq!(get_path(&typed, &args[0], "h.b"), Some(&Value::Bool(false)));
        assert_eq!(get_path(&typed, &args[0], "arr[1]"), Some(&Value::bit(16, 0)));
        assert_eq!(args[1], Value::bit(32, 0));
        assert!(init_args(&typed, "Nope").is_none());
    }

    #[test]
    fn set_and_get_paths() {
        let typed = check(
            r#"header h_t { bit<8> a; }
            struct s_t { h_t h; bit<16>[2] arr; }
            control C(inout s_t s) { apply { } }"#,
            &CheckOptions::ifc(),
        )
        .unwrap();
        let mut v = init_args(&typed, "C").unwrap().remove(0);
        assert!(set_path(&typed, &mut v, "h.a", Value::Int(200)));
        assert_eq!(get_path(&typed, &v, "h.a"), Some(&Value::bit(8, 200)));
        assert!(set_path(&typed, &mut v, "arr[0]", Value::Int(7)));
        assert_eq!(get_path(&typed, &v, "arr[0]"), Some(&Value::bit(16, 7)));
        // Bad paths fail cleanly.
        assert!(!set_path(&typed, &mut v, "nope", Value::Int(1)));
        assert!(!set_path(&typed, &mut v, "arr[9]", Value::Int(1)));
        assert!(get_path(&typed, &v, "h.zzz").is_none());
        assert!(get_path(&typed, &v, "arr[9]").is_none());
    }
}
