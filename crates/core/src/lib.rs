//! # P4BID — Information Flow Control in P4 (PLDI 2022 reproduction)
//!
//! A security-type system for (Core) P4 that provably enforces
//! non-interference, reproduced as a self-contained Rust workspace: lexer,
//! parser, baseline and IFC typecheckers, a big-step interpreter with a
//! control plane, an empirical non-interference harness, the paper's six
//! case-study programs, and the benchmark harness regenerating Table 1.
//!
//! This crate is the facade: it re-exports the pieces, ships the
//! [`corpus`] of case studies, derives the unannotated baselines
//! ([`strip`]), generates scaling workloads ([`synth`]), checks whole
//! corpora in parallel ([`batch`]), runs the streaming ingest service
//! behind `p4bid serve` / `p4bid watch` ([`serve`]), composes per-switch
//! verdicts into whole-network fixpoint reports ([`topo`]), fuzzes the
//! soundness theorem across cores ([`fuzz`]), injects deterministic
//! faults for chaos testing ([`faults`]), renders diagnostics
//! ([`render_diagnostics`]), and produces the evaluation reports
//! ([`report`]).
//!
//! ## Quickstart
//!
//! ```
//! use p4bid::{check, CheckOptions, DiagCode};
//!
//! // The paper's Listing 1 bug: a secret local TTL stored in the public
//! // ipv4 header.
//! let insecure = p4bid::corpus::TOPOLOGY.insecure;
//! let errors = check(insecure, &CheckOptions::ifc()).unwrap_err();
//! assert!(errors.iter().any(|d| d.code == DiagCode::ExplicitFlow));
//!
//! // The Listing 2 fix typechecks.
//! assert!(check(p4bid::corpus::TOPOLOGY.secure, &CheckOptions::ifc()).is_ok());
//! ```
//!
//! ## Running packets
//!
//! ```
//! use p4bid::{check, CheckOptions};
//! use p4bid::interp::{run_control, ControlPlane, Value};
//!
//! let typed = check(
//!     "control Inc(inout bit<8> x) { apply { x = x + 8w1; } }",
//!     &CheckOptions::ifc(),
//! ).unwrap();
//! let out = run_control(&typed, &ControlPlane::new(), "Inc", vec![Value::bit(8, 1)])
//!     .unwrap();
//! assert_eq!(out.param("x"), Some(&Value::bit(8, 2)));
//! ```

// `deny` rather than `forbid`: the drain handler in [`serve`] installs a
// process signal handler through one audited `#[allow(unsafe_code)]` FFI
// shim; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod corpus;
pub mod faults;
pub mod fuzz;
pub mod packet;
pub mod policy;
pub mod report;
pub mod serve;
pub mod strip;
pub mod synth;
pub mod topo;

pub use p4bid_typeck::{
    check_source as check, render_chain, CheckOptions, CheckerSession, DiagCode, Diagnostic,
    FlowEdge, FlowNode, FlowOp, LineageEdge, LineageGraph, Mode, SessionHarvest, SessionStats,
    SharedSessionCore, TypedControl, TypedProgram, DEFAULT_PREFIX_CACHE_CAP, PRELUDE,
};
pub use policy::{PolicyError, PolicyPack, PolicyRule};

/// The security-lattice substrate.
pub mod lattice {
    pub use p4bid_lattice::{laws, Label, Lattice, LatticeError};
}

/// Surface and resolved abstract syntax, interning, and the hash-consing
/// type pool.
pub mod ast {
    pub use p4bid_ast::intern::{FrozenInterner, Interner, Symbol};
    pub use p4bid_ast::pool::{FrozenPool, FrozenTyCtx, SharedTyCtx, TyCtx, TyPool};
    pub use p4bid_ast::pretty;
    pub use p4bid_ast::sectype::{FieldList, FnParam, FnTy, SecTy, Ty, TyId};
    pub use p4bid_ast::span::{line_col, source_line, span_line_col, LineCol, Span, Spanned};
    pub use p4bid_ast::surface::*;
}

/// Parsing.
pub mod syntax {
    pub use p4bid_syntax::{parse, ParseError};
}

/// The Core P4 interpreter and control plane.
pub mod interp {
    pub use p4bid_interp::{
        run_control, Closure, ControlOutcome, ControlPlane, EvalError, Interp, KeyPattern, Signal,
        TableConfig, TableEntry, TableValue, Value,
    };
}

/// The empirical non-interference harness.
pub mod ni {
    pub use p4bid_ni::{
        check_non_interference, check_sequence_non_interference, low_equal, observable_differences,
        random_program, run_pair, Difference, GenConfig, GeneratedProgram, LeakWitness, NiConfig,
        NiOutcome, SequenceConfig,
    };
}

use p4bid_ast::span::{source_line, span_line_col};

/// Renders diagnostics against the source text they were produced from,
/// with `line:col` positions and a caret under the offending span.
///
/// Diagnostics whose span does not fall inside `source` (e.g. from the
/// implicit prelude) are rendered without a location.
///
/// # Examples
///
/// ```
/// use p4bid::{check, CheckOptions, render_diagnostics};
/// let src = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {\n    apply { l = h; }\n}\n";
/// let errs = check(src, &CheckOptions::ifc()).unwrap_err();
/// let report = render_diagnostics(src, &errs);
/// assert!(report.contains("E-EXPLICIT-FLOW"));
/// assert!(report.contains("2:13"));
/// ```
#[must_use]
pub fn render_diagnostics(source: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        if let Some(lc) = span_line_col(source, d.span) {
            out.push_str(&format!("{lc}: {d}\n"));
            let line = source_line(source, d.span.start);
            out.push_str(&format!("    | {line}\n"));
            let col = (lc.col as usize).saturating_sub(1);
            let width = ((d.span.end - d.span.start) as usize)
                .clamp(1, line.len().saturating_sub(col).max(1));
            out.push_str(&format!("    | {}{}\n", " ".repeat(col), "^".repeat(width)));
        } else {
            out.push_str(&format!("{d}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_leak() {
        let src =
            "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {\n    apply { l = h; }\n}\n";
        let errs = check(src, &CheckOptions::ifc()).unwrap_err();
        let report = render_diagnostics(src, &errs);
        assert!(report.contains("l = h"), "{report}");
        assert!(report.contains('^'), "{report}");
    }

    #[test]
    fn render_survives_dummy_spans() {
        let d = Diagnostic::new(DiagCode::Malformed, "synthetic", ast::Span::dummy());
        let report = render_diagnostics("short", &[d]);
        assert!(report.contains("synthetic"));
        assert!(!report.contains('^'));
    }
}
