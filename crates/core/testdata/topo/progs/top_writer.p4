// Writes only at `top` of the diamond lattice, so it accepts under any
// ambient pc. The labels resolve against the per-switch `lattice`
// override in the manifest.
control Sink(inout <bit<8>, top> x) {
    apply {
        x = x + 8w1;
    }
}
