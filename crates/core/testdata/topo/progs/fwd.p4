// A forwarder that only touches secret state: it typechecks at any
// ambient pc up to `high`, so it can sit anywhere in a topology.
control Fwd(inout <bit<8>, high> x) {
    apply {
        x = x + 8w1;
    }
}
