// Writes a public counter. Fine in a public context; under a `high`
// ingress seed the write becomes an implicit flow and the switch is
// rejected.
control LowWriter(inout <bit<8>, low> y) {
    apply {
        y = y + 8w1;
    }
}
