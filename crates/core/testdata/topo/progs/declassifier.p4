// Lowers a secret into a public header. Only typechecks on switches
// whose manifest grants `declassify = true`.
control Release(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    apply {
        l = declassify(h);
    }
}
