// Pins its own context to `low`. Standalone that is fine, but the
// topology checker runs switches under a pc *floor*: a `high` ingress
// seed makes this annotation an understatement and the switch rejects.
@pc(low) control Pinned(inout <bit<8>, high> x) {
    apply {
        x = x + 8w1;
    }
}
