//! Determinism regressions: given the same seed/inputs, the soundness
//! fuzzer and the parallel `batch` driver must produce **byte-identical**
//! reports run over run — and, for `batch`, across worker counts. This
//! pins the thread pool's ordered-collection contract: results are merged
//! by input index, never by completion order.
//!
//! Since the shared-core refactor it also pins the session-sharing
//! contract: the shared-frozen-core path (the default) and the historical
//! freshly-built-per-worker-session path must render byte-identical
//! reports at every worker count.

use p4bid::batch::{check_batch, check_batch_cold, synthetic_corpus, BatchInput};
use p4bid::fuzz::{run_fuzz, run_fuzz_cold};
use p4bid::ni::{GenConfig, NiConfig};
use p4bid::CheckOptions;
use std::process::{Command, Output};

fn p4bid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_p4bid")).args(args).output().expect("binary runs")
}

#[test]
fn fuzz_reports_are_byte_identical_across_runs() {
    let a = p4bid(&["fuzz", "25"]);
    let b = p4bid(&["fuzz", "25"]);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.status.code(), b.status.code());
    assert_eq!(a.stdout, b.stdout, "fuzz stdout differs between identical runs");
    assert_eq!(a.stderr, b.stderr, "fuzz stderr differs between identical runs");
}

#[test]
fn fuzz_reports_are_byte_identical_across_job_counts() {
    // `p4bid fuzz --jobs N` partitions seeds over the batch work-stealing
    // pool; reports are merged by seed, so stdout and stderr must match
    // the serial run byte for byte regardless of worker count.
    let serial = p4bid(&["fuzz", "25"]);
    assert!(serial.status.success(), "{}", String::from_utf8_lossy(&serial.stderr));
    for jobs in ["2", "3", "0"] {
        let par = p4bid(&["fuzz", "25", "--jobs", jobs]);
        assert_eq!(serial.status.code(), par.status.code(), "jobs={jobs}");
        assert_eq!(serial.stdout, par.stdout, "fuzz stdout differs at --jobs {jobs}");
        assert_eq!(serial.stderr, par.stderr, "fuzz stderr differs at --jobs {jobs}");
    }
}

#[test]
fn batch_json_is_byte_identical_across_runs() {
    let a = p4bid(&["batch", "--synthetic", "60", "--json", "--jobs", "3"]);
    let b = p4bid(&["batch", "--synthetic", "60", "--json", "--jobs", "3"]);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "batch JSON differs between identical runs");
}

#[test]
fn batch_shared_core_matches_cold_sessions_across_job_counts() {
    // The shared-core path must be an invisible optimization: table and
    // JSON renderings byte-identical to per-worker cold sessions, for
    // every worker count on both sides.
    let mut inputs = synthetic_corpus(30);
    inputs.insert(
        7,
        BatchInput::new(
            "leak",
            "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
        ),
    );
    inputs.insert(19, BatchInput::new("syntax-error", "control {"));
    let opts = CheckOptions::ifc();
    let reference = check_batch_cold(&inputs, &opts, 1);
    for jobs in [1, 2, 8] {
        let cold = check_batch_cold(&inputs, &opts, jobs);
        let shared = check_batch(&inputs, &opts, jobs);
        assert_eq!(reference.to_json(), cold.to_json(), "cold jobs={jobs}");
        assert_eq!(reference.to_json(), shared.to_json(), "shared jobs={jobs}");
        assert_eq!(reference.render_table(), shared.render_table(), "shared jobs={jobs}");
    }
}

#[test]
fn fuzz_shared_core_matches_cold_sessions_across_job_counts() {
    let cfg = GenConfig::default();
    let ni = NiConfig::default().with_runs(5);
    let reference = run_fuzz_cold(20, &cfg, &ni, 1);
    for jobs in [1, 2, 8] {
        let cold = run_fuzz_cold(20, &cfg, &ni, jobs);
        let shared = run_fuzz(20, &cfg, &ni, jobs);
        for (name, report) in [("cold", &cold), ("shared", &shared)] {
            assert_eq!(reference.accepted, report.accepted, "{name} jobs={jobs}");
            assert_eq!(reference.rejected, report.rejected, "{name} jobs={jobs}");
            assert_eq!(reference.violation, report.violation, "{name} jobs={jobs}");
        }
    }
}

#[test]
fn batch_reports_are_identical_across_job_counts() {
    // stdout (table and JSON alike) must not depend on scheduling; only
    // the stderr timing line may mention the worker count.
    let serial_json = p4bid(&["batch", "--synthetic", "40", "--json", "--jobs", "1"]);
    let parallel_json = p4bid(&["batch", "--synthetic", "40", "--json", "--jobs", "4"]);
    assert_eq!(serial_json.stdout, parallel_json.stdout);

    let serial_table = p4bid(&["batch", "--synthetic", "40", "--jobs", "1"]);
    let parallel_table = p4bid(&["batch", "--synthetic", "40", "--jobs", "4"]);
    assert_eq!(serial_table.stdout, parallel_table.stdout);
}
