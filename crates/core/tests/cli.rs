//! Integration tests for the `p4bid` command-line tool: exit codes,
//! diagnostics on stderr, and the subcommand surface.

use std::io::Write as _;
use std::process::{Command, Output};

fn p4bid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_p4bid")).args(args).output().expect("binary runs")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("p4bid-cli-{name}-{}.p4", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn no_args_prints_usage() {
    let out = p4bid(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn check_accepts_secure_program() {
    let path = write_temp("secure", p4bid::corpus::CACHE.secure);
    let out = p4bid(&["check", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok:"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_rejects_insecure_program_with_diagnostics() {
    let path = write_temp("insecure", p4bid::corpus::CACHE.insecure);
    let out = p4bid(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("E-TABLE-KEY-FLOW"), "{stderr}");
    assert!(stderr.contains('^'), "caret rendering expected: {stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_base_mode_accepts_the_leak() {
    let path = write_temp("base", p4bid::corpus::CACHE.insecure);
    let out = p4bid(&["check", path.to_str().unwrap(), "--base"]);
    assert!(out.status.success());
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_with_pc_flag() {
    let src = r#"
        lattice { bot < A; bot < B; A < top; B < top; }
        control Alice(inout <bit<32>, B> bob) { apply { bob = 32w1; } }
    "#;
    let path = write_temp("pc", src);
    let ok = p4bid(&["check", path.to_str().unwrap()]);
    assert!(ok.status.success(), "fine at the default pc = bot");
    let bad = p4bid(&["check", path.to_str().unwrap(), "--pc", "A"]);
    assert_eq!(bad.status.code(), Some(1), "rejected at pc = A");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_missing_file_is_usage_error() {
    let out = p4bid(&["check", "/nonexistent/ghost.p4"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn matrix_reports_all_six_studies() {
    let out = p4bid(&["matrix"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["D2R", "App", "Lattice", "Topology", "Cache", "NetChain"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    let rejected_rows = stdout.lines().filter(|l| l.contains("  rejected  ")).count();
    assert_eq!(rejected_rows, 6, "{stdout}");
    assert!(!stdout.contains("MISSED"));
    assert!(!stdout.contains("FAIL"));
}

#[test]
fn corpus_listing_and_variants() {
    let list = p4bid(&["corpus"]);
    assert!(list.status.success());
    assert!(String::from_utf8_lossy(&list.stdout).contains("Cache"));

    let secure = p4bid(&["corpus", "cache"]);
    assert!(
        String::from_utf8_lossy(&secure.stdout).contains("high> hit")
            || String::from_utf8_lossy(&secure.stdout).contains("high> query")
    );

    let plain = p4bid(&["corpus", "cache", "--unannotated"]);
    assert!(!String::from_utf8_lossy(&plain.stdout).contains("high"));

    let unknown = p4bid(&["corpus", "nothere"]);
    assert_eq!(unknown.status.code(), Some(2));
}

#[test]
fn ni_finds_leak_and_clean_bill() {
    // A self-contained leaky program (no table, so the empty control
    // plane in `p4bid ni` is fine).
    let leaky = write_temp(
        "ni-leak",
        "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
    );
    let out = p4bid(&["ni", leaky.to_str().unwrap(), "--runs", "50"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("non-interference violated"));
    let _ = std::fs::remove_file(leaky);

    let clean = write_temp(
        "ni-clean",
        "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { h = l; } }",
    );
    let out = p4bid(&["ni", clean.to_str().unwrap(), "--runs", "50"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("held"));
    let _ = std::fs::remove_file(clean);
}

#[test]
fn fuzz_subcommand_reports_counts() {
    let out = p4bid(&["fuzz", "30"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fuzzed 30 programs"), "{stdout}");
}

// ---------------------------------------------------------------------
// `p4bid batch`: exit codes, report shapes, and error handling.
// ---------------------------------------------------------------------

/// A scratch directory seeded with the given (name, source) programs.
fn batch_dir(tag: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("p4bid-batch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create batch dir");
    for (name, source) in files {
        std::fs::write(dir.join(name), source).expect("write corpus file");
    }
    dir
}

const BATCH_OK: &str = "control C(inout bit<8> x) { apply { x = x + 8w1; } }";
const BATCH_LEAK: &str =
    "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";

#[test]
fn batch_all_accept_exits_zero() {
    let dir = batch_dir("ok", &[("a.p4", BATCH_OK), ("b.p4", BATCH_OK)]);
    let out = p4bid(&["batch", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 program(s): 2 accepted, 0 rejected"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checked 2 program(s)"), "timing on stderr: {stderr}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn batch_any_reject_exits_one_with_located_diagnostics() {
    let dir = batch_dir("mixed", &[("a.p4", BATCH_OK), ("z-leak.p4", BATCH_LEAK)]);
    let out = p4bid(&["batch", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REJECT"), "{stdout}");
    assert!(stdout.contains("E-EXPLICIT-FLOW @ 1:68"), "{stdout}");
    assert!(stdout.contains("1 accepted, 1 rejected"), "{stdout}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn batch_stats_flag_prints_tier_sizes_and_hit_rate() {
    let out = p4bid(&["batch", "--synthetic", "12", "--jobs", "2", "--stats"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("12 program(s): 12 accepted, 0 rejected"), "{stdout}");
    // The stats block goes to stderr (like timing): it depends on
    // work-stealing order, and stdout must stay exactly the report.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("type universe: frozen"), "{stderr}");
    assert!(stderr.contains("overlay +"), "{stderr}");
    assert!(stderr.contains("frozen-segment hit rate: symbols"), "{stderr}");
    assert!(stderr.contains("push-cache hits"), "{stderr}");
    assert!(!stdout.contains("frozen-segment hit rate"), "{stdout}");
    // --json --stats: stdout parses as one JSON document, stats on stderr.
    let json = p4bid(&["batch", "--synthetic", "12", "--json", "--stats"]);
    let json_stdout = String::from_utf8_lossy(&json.stdout);
    assert!(json_stdout.trim_end().ends_with('}'), "{json_stdout}");
    assert!(!json_stdout.contains("frozen-segment hit rate"), "{json_stdout}");
    assert!(
        String::from_utf8_lossy(&json.stderr).contains("frozen-segment hit rate"),
        "{}",
        String::from_utf8_lossy(&json.stderr)
    );
    // Without the flag, no stats on either stream.
    let plain = p4bid(&["batch", "--synthetic", "12", "--jobs", "2"]);
    assert!(!String::from_utf8_lossy(&plain.stderr).contains("frozen-segment hit rate"));
}

#[test]
fn batch_and_fuzz_stats_json_schema() {
    // `--stats-json` emits one `p4bid-stats/5` document on stderr; the
    // deterministic report on stdout is untouched.
    let out = p4bid(&["batch", "--synthetic", "8", "--jobs", "2", "--stats-json"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stats_line = stderr
        .lines()
        .find(|l| l.starts_with("{\"schema\": \"p4bid-stats/5\""))
        .unwrap_or_else(|| panic!("no stats document on stderr: {stderr}"));
    for needle in [
        "\"command\": \"batch\"",
        "\"workers\": ",
        "\"frozen_syms\": ",
        "\"overlay_types\": ",
        "\"sym_hit_rate\": ",
        "\"ty_intern_calls\": ",
        "\"push_cache_hits\": ",
    ] {
        assert!(stats_line.contains(needle), "{needle} missing from {stats_line}");
    }
    assert!(!stats_line.contains("\"epochs\""), "epochs is serve-only: {stats_line}");
    assert!(!String::from_utf8_lossy(&out.stdout).contains("p4bid-stats"), "stdout stays clean");

    let fuzz = p4bid(&["fuzz", "20", "--jobs", "2", "--stats-json"]);
    assert!(fuzz.status.success(), "{}", String::from_utf8_lossy(&fuzz.stderr));
    let stderr = String::from_utf8_lossy(&fuzz.stderr);
    assert!(stderr.contains("{\"schema\": \"p4bid-stats/5\", \"command\": \"fuzz\", "), "{stderr}");
}

#[test]
fn batch_json_report_schema() {
    let dir = batch_dir("json", &[("a.p4", BATCH_OK), ("z-leak.p4", BATCH_LEAK)]);
    let out = p4bid(&["batch", dir.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).expect("utf-8 JSON");
    // Schema snapshot: stable tag, per-program rows keyed by input index,
    // diagnostics with code/position/message, and the summary object.
    assert!(json.contains("\"schema\": \"p4bid-batch-report/2\""), "{json}");
    assert!(
        json.contains(
            "{\"index\": 0, \"name\": \"a.p4\", \"status\": \"accept\", \"diagnostics\": []}"
        ),
        "{json}"
    );
    assert!(
        json.contains("\"index\": 1, \"name\": \"z-leak.p4\", \"status\": \"reject\""),
        "{json}"
    );
    assert!(json.contains("\"code\": \"E-EXPLICIT-FLOW\", \"line\": 1, \"col\": 68"), "{json}");
    // `/2`: every diagnostic carries its machine-readable flow path.
    assert!(
        json.contains(
            "\"lineage\": [{\"op\": \"assign\", \
             \"source\": {\"expr\": \"h\", \"label\": \"high\", \"line\": 1, \"col\": 72}, \
             \"sink\": {\"expr\": \"l\", \"label\": \"low\", \"line\": 1, \"col\": 68}}]"
        ),
        "{json}"
    );
    assert!(
        json.contains("\"summary\": {\"total\": 2, \"accepted\": 1, \"rejected\": 1}"),
        "{json}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn batch_policy_resolves_per_program_options() {
    let declassifying = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) \
                         { apply { l = declassify(h); } }";
    let dir =
        batch_dir("policy", &[("declass-a.p4", declassifying), ("plain-b.p4", declassifying)]);
    let policy = dir.join("p4bid.policy");
    std::fs::write(
        &policy,
        "# audit-approved programs may declassify\n[declass-*]\ndeclassify = true\n",
    )
    .unwrap();
    let out =
        p4bid(&["batch", dir.to_str().unwrap(), "--policy", policy.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).expect("utf-8 JSON");
    assert!(json.contains("\"name\": \"declass-a.p4\", \"status\": \"accept\""), "{json}");
    assert!(json.contains("\"name\": \"plain-b.p4\", \"status\": \"reject\""), "{json}");
    assert!(json.contains("\"code\": \"E-DECLASSIFY-FORBIDDEN\""), "{json}");
    // Determinism across worker counts survives the partitioned check.
    let rerun = |jobs: &str| {
        let out = p4bid(&[
            "batch",
            dir.to_str().unwrap(),
            "--policy",
            policy.to_str().unwrap(),
            "--json",
            "--jobs",
            jobs,
        ]);
        String::from_utf8(out.stdout).expect("utf-8 JSON")
    };
    assert_eq!(rerun("1"), json);
    assert_eq!(rerun("8"), json);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn batch_rejects_malformed_policy_packs() {
    let dir = batch_dir("bad-policy", &[("a.p4", BATCH_OK)]);
    let policy = dir.join("p4bid.policy");
    std::fs::write(&policy, "[declass-*]\ndeclassify = maybe\n").unwrap();
    let out = p4bid(&["batch", dir.to_str().unwrap(), "--policy", policy.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load policy"), "{stderr}");
    assert!(stderr.contains("line 2"), "malformed line is named: {stderr}");
    let missing = p4bid(&["batch", dir.to_str().unwrap(), "--policy", "/nonexistent/p.policy"]);
    assert_eq!(missing.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn batch_base_mode_accepts_the_leak() {
    let dir = batch_dir("base", &[("leak.p4", BATCH_LEAK)]);
    let out = p4bid(&["batch", dir.to_str().unwrap(), "--base"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn batch_empty_dir_is_usage_error() {
    let dir = batch_dir("empty", &[]);
    let out = p4bid(&["batch", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no .p4 files"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn batch_invalid_dir_is_usage_error() {
    let out = p4bid(&["batch", "/nonexistent/ghost-dir"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read directory"));
}

#[test]
fn batch_accepts_flags_before_the_directory() {
    // Flag values must not be mistaken for the positional argument.
    let dir = batch_dir("flags-first", &[("a.p4", BATCH_OK)]);
    let out = p4bid(&["batch", "--jobs", "1", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn batch_rejects_bad_flag_values() {
    let no_input = p4bid(&["batch"]);
    assert_eq!(no_input.status.code(), Some(2));
    let bad_jobs = p4bid(&["batch", "--synthetic", "4", "--jobs", "0"]);
    assert_eq!(bad_jobs.status.code(), Some(2));
    let bad_synth = p4bid(&["batch", "--synthetic", "many"]);
    assert_eq!(bad_synth.status.code(), Some(2));
}

#[test]
fn batch_checks_a_thousand_synthetic_programs() {
    let out = p4bid(&["batch", "--synthetic", "1000", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"summary\": {\"total\": 1000, \"accepted\": 1000, \"rejected\": 0}"));
    assert!(json.contains("\"name\": \"synth-0999\""), "input-ordered to the last program");
}

// ---------------------------------------------------------------------
// End-to-end corpus coverage: the paper's Topology case study (Listings
// 1 and 2) through the real binary — exit codes and diagnostic output.
// ---------------------------------------------------------------------

#[test]
fn check_accepts_topology_listing2_fix() {
    let path = write_temp("topology-secure", p4bid::corpus::TOPOLOGY.secure);
    let out = p4bid(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok:"), "{stdout}");
    assert!(stdout.contains("low < high"), "reports the active lattice: {stdout}");
    assert!(out.stderr.is_empty(), "no diagnostics on success");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_rejects_topology_listing1_bug_with_located_diagnostics() {
    let path = write_temp("topology-insecure", p4bid::corpus::TOPOLOGY.insecure);
    let out = p4bid(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty(), "diagnostics go to stderr");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("E-EXPLICIT-FLOW"), "the Listing 1 leak class: {stderr}");
    // Rendered diagnostics carry a line:col location, the offending
    // source line, a caret, and a final error count.
    let has_location = stderr.lines().any(|l| {
        let mut parts = l.splitn(3, ':');
        matches!((parts.next(), parts.next()), (Some(line), Some(col))
            if !line.is_empty() && line.chars().all(|c| c.is_ascii_digit())
                && !col.is_empty() && col.chars().all(|c| c.is_ascii_digit()))
    });
    assert!(has_location, "diagnostics carry a line:col location: {stderr}");
    assert!(stderr.contains('^'), "caret rendering: {stderr}");
    assert!(stderr.contains("error(s)"), "summary count: {stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_permissive_mode_accepts_the_topology_bug() {
    // Permissive resolves labels but does not enforce flows, so the
    // interpreter (and `p4bid ni`) can run the buggy program.
    let path = write_temp("topology-permissive", p4bid::corpus::TOPOLOGY.insecure);
    let out = p4bid(&["check", path.to_str().unwrap(), "--permissive"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_file(path);
}

#[test]
fn corpus_output_round_trips_through_check() {
    // `p4bid corpus NAME` output is itself a checkable program: feed the
    // printed secure variant back through `p4bid check`.
    let listing = p4bid(&["corpus", "topology"]);
    assert!(listing.status.success());
    let source = String::from_utf8(listing.stdout).expect("utf-8 corpus source");
    let path = write_temp("corpus-roundtrip", &source);
    let out = p4bid(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_file(path);
}
