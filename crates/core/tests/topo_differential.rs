//! Differential test: a single-switch topology is the degenerate case
//! of batch checking, and the two layers must agree to the byte.
//!
//! For every probe program, a one-switch manifest run through the
//! fixpoint driver must produce — via [`TopoReport::as_batch_report`] —
//! exactly the bytes `check_batch` produces for the same source under
//! the equivalent options, at `--jobs` 1, 2, and 8. Any divergence
//! means the topology layer changed verdicts, diagnostics, or
//! rendering on the way through, which would make whole-network
//! reports unreliable as a substitute for per-program runs.
//!
//! [`TopoReport::as_batch_report`]: p4bid::topo::TopoReport::as_batch_report

use p4bid::batch::{check_batch, BatchInput};
use p4bid::topo::{check_topology, TopoManifest, Topology};
use p4bid::CheckOptions;

const JOBS: [usize; 3] = [1, 2, 8];

/// Builds the one-switch topology for `src`, seeded with `ingress`.
fn single(name: &str, src: &str, ingress: Option<&str>) -> Topology {
    let seed = ingress.map_or(String::new(), |l| format!("ingress = \"{l}\"\n"));
    let manifest = TopoManifest::parse(&format!(
        "lattice = \"low < high\"\n\n[switch {name}]\nprogram = \"{name}.p4\"\n{seed}"
    ))
    .expect("manifest parses");
    manifest.resolve_with(|_| Ok(src.to_string())).expect("topology assembles")
}

/// The core differential: topology bytes == batch bytes, across jobs
/// settings and repeated runs.
fn assert_differential(name: &str, src: &str, ingress: Option<&str>, batch_opts: &CheckOptions) {
    let topo = single(name, src, ingress);
    let input = [BatchInput::new(name, src)];
    for jobs in JOBS {
        let via_topo = check_topology(&topo, &CheckOptions::ifc(), jobs);
        assert!(via_topo.violations.is_empty(), "{name}: single switch cannot violate wires");
        let topo_json = via_topo.as_batch_report().to_json();
        let batch_json = check_batch(&input, batch_opts, jobs).to_json();
        assert_eq!(
            topo_json, batch_json,
            "{name}: topology and batch reports diverge at --jobs {jobs}"
        );
        let again = check_topology(&topo, &CheckOptions::ifc(), jobs);
        assert_eq!(
            again.to_json(),
            via_topo.to_json(),
            "{name}: topology report differs across runs at --jobs {jobs}"
        );
    }
}

#[test]
fn accepting_program_matches_batch() {
    assert_differential(
        "fwd",
        "control Fwd(inout <bit<8>, high> x) { apply { x = x + 8w1; } }",
        None,
        &CheckOptions::ifc(),
    );
}

#[test]
fn explicit_flow_rejection_matches_batch() {
    assert_differential(
        "leak",
        "control Leak(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
        None,
        &CheckOptions::ifc(),
    );
}

#[test]
fn parse_error_verdict_matches_batch() {
    assert_differential("soup", "control { this is not p4", None, &CheckOptions::ifc());
}

/// A seeded ingress is the same as handing batch the equivalent
/// `--pc` (with the pc floor the topology layer always enforces).
#[test]
fn seeded_ingress_matches_batch_with_pc() {
    let opts = CheckOptions::ifc().with_pc("high").with_pc_floor(true);
    assert_differential(
        "seeded",
        "control Ctr(inout <bit<8>, low> y) { apply { y = y + 8w1; } }",
        Some("high"),
        &opts,
    );
    assert_differential(
        "tolerant",
        "control Fwd(inout <bit<8>, high> x) { apply { x = x + 8w1; } }",
        Some("high"),
        &opts,
    );
}
