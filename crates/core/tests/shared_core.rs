//! Shared-core regression: batch and fuzz workers must share one frozen
//! session core — the prelude is lexed, parsed, and type-checked exactly
//! once per core, never once per worker.
//!
//! The typeck crate counts prelude builds process-wide
//! ([`p4bid_typeck::prelude_build_counts`]); everything here runs inside
//! one `#[test]` so the counter deltas are not interleaved by the test
//! harness's thread pool.

use p4bid::batch::{check_batch, check_batch_cold, check_batch_with_core, synthetic_corpus};
use p4bid::CheckOptions;
use p4bid_typeck::{prelude_build_counts, SharedSessionCore};

#[test]
fn workers_never_rebuild_the_prelude() {
    let inputs = synthetic_corpus(40);
    let opts = CheckOptions::ifc();

    // Freezing a core type-checks the prelude exactly once.
    let before_core = prelude_build_counts();
    let core = SharedSessionCore::new(opts.clone());
    let after_core = prelude_build_counts();
    assert_eq!(after_core.checks - before_core.checks, 1, "one prelude check per core");
    // The token slice and the parsed program are process-wide: at most one
    // build of each, ever, no matter how many sessions/cores exist.
    assert!(after_core.lexes <= 1, "{after_core:?}");
    assert!(after_core.parses <= 1, "{after_core:?}");

    // Checking a corpus over 8 workers off the shared core rebuilds
    // nothing: no re-lex, no re-parse, no re-check.
    let report = check_batch_with_core(&inputs, &core, 8);
    assert!(report.all_accepted(), "{}", report.render_table());
    let after_batch = prelude_build_counts();
    assert_eq!(after_batch, after_core, "shared-core workers must not rebuild the prelude");

    // `check_batch` freezes its own core: exactly one more check.
    let _ = check_batch(&inputs, &opts, 8);
    let after_owned = prelude_build_counts();
    assert_eq!(after_owned.checks - after_batch.checks, 1);

    // The cold path (kept for the determinism comparison) pays one prelude
    // check per worker session — the warm-up the shared core eliminates.
    let _ = check_batch_cold(&inputs, &opts, 4);
    let after_cold = prelude_build_counts();
    let cold_checks = after_cold.checks - after_owned.checks;
    assert!(
        (1..=4).contains(&cold_checks),
        "cold workers each check the prelude, got {cold_checks}"
    );
    assert_eq!(after_cold.lexes, after_core.lexes, "lexing stays process-wide even when cold");
    assert_eq!(after_cold.parses, after_core.parses, "parsing stays process-wide even when cold");
}

/// Program-supplied lattices build their prelude state once per *core*,
/// not once per worker: the publish-once side table serializes the first
/// build under its lock and every sibling session adopts the published
/// state. A renamed two-point chain is used because its label indices
/// coincide with the frozen warm lattice's, so the built state is
/// tier-pure and publishable.
#[test]
fn program_lattices_publish_prelude_state_once_across_workers() {
    use p4bid::batch::BatchInput;
    let lat = "lattice { lo < hi; }\n";
    let inputs: Vec<BatchInput> = (0..40)
        .map(|i| {
            BatchInput::new(
                format!("chain-{i:02}"),
                format!(
                    "{lat}control C{i}(inout <bit<8>, lo> x) {{ apply {{ x = x + 8w{}; }} }}",
                    i % 9
                ),
            )
        })
        .collect();
    let core = SharedSessionCore::new(CheckOptions::ifc());
    let report = check_batch_with_core(&inputs, &core, 8);
    assert!(report.all_accepted(), "{}", report.render_table());
    let s = report.stats.sessions;
    assert_eq!(
        s.lattice_states_published, 1,
        "exactly one worker builds the chain prelude state: {s:?}"
    );

    // Resubmitting the same corpus rebuilds nothing: every program either
    // resumes from the shared depth-1 prefix snapshot (the lattice decl
    // prefix is byte-identical across all 40 programs) or adopts the
    // published lattice state — no second build, no second publish.
    let again = check_batch_with_core(&inputs, &core, 8);
    assert_eq!(report.to_json(), again.to_json(), "warm reports are byte-identical");
    let s2 = again.stats.sessions;
    assert_eq!(s2.lattice_states_published, 0, "{s2:?}");
    assert_eq!(s2.prefix_hits, 40, "every resubmission resumes past the lattice decl: {s2:?}");
}
