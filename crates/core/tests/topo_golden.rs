//! Topology conformance corpus with golden sidecars.
//!
//! Every manifest under `testdata/topo/{accept,reject}` has an
//! `.expected` sidecar pinning the exact output the topology checker
//! must produce: the human table, a `---` separator, then the
//! `p4bid-topo-report/1` JSON (or a single `error:` line for manifests
//! that fail to load). The harness checks every manifest at `--jobs`
//! 1, 2, and 8 and requires the reports to be byte-identical across
//! the three settings and across repeated runs — the determinism
//! contract the fixpoint driver advertises.
//!
//! Regenerate the sidecars after an intentional output change with:
//!
//! ```console
//! $ P4BID_BLESS=1 cargo test -p p4bid --test topo_golden
//! ```

use p4bid::topo::{check_topology, Topology};
use p4bid::CheckOptions;
use std::fs;
use std::path::{Path, PathBuf};

const JOBS: [usize; 3] = [1, 2, 8];

fn corpus_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/topo").join(kind)
}

fn manifests(kind: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(corpus_dir(kind))
        .unwrap_or_else(|e| panic!("missing corpus dir {kind}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "topo"))
        .collect();
    out.sort();
    out
}

fn bless() -> bool {
    std::env::var("P4BID_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The golden rendering for one manifest: the table, a separator, and
/// the JSON report — or the load error. Checks the report is
/// byte-identical across jobs settings and repeated runs while it is
/// at it.
fn golden_for(path: &Path) -> (String, Option<bool>) {
    let topo = match Topology::load(path) {
        Ok(t) => t,
        Err(e) => return (format!("error: {e}\n"), None),
    };
    let opts = CheckOptions::ifc();
    let reports: Vec<_> = JOBS.iter().map(|&j| check_topology(&topo, &opts, j)).collect();
    let json = reports[0].to_json();
    for (r, j) in reports.iter().zip(JOBS) {
        assert_eq!(r.to_json(), json, "{}: report differs at --jobs {j}", path.display());
    }
    let again = check_topology(&topo, &opts, 2);
    assert_eq!(again.to_json(), json, "{}: report differs across runs", path.display());

    let mut golden = reports[0].render_table();
    if !golden.ends_with('\n') {
        golden.push('\n');
    }
    golden.push_str("---\n");
    golden.push_str(&json);
    if !golden.ends_with('\n') {
        golden.push('\n');
    }
    (golden, Some(reports[0].all_ok()))
}

fn run_corpus(kind: &str, want_ok: bool) {
    let mut failures = Vec::new();
    for path in manifests(kind) {
        let (golden, all_ok) = golden_for(&path);
        match all_ok {
            Some(ok) if ok != want_ok => {
                failures.push(format!(
                    "{}: expected {} but the checker said {}",
                    path.display(),
                    if want_ok { "accept" } else { "reject" },
                    if ok { "accept" } else { "reject" },
                ));
                continue;
            }
            // A manifest that fails to load only belongs in `reject`.
            None if want_ok => {
                failures.push(format!("{}: failed to load: {golden}", path.display()));
                continue;
            }
            _ => {}
        }

        let sidecar = path.with_extension("expected");
        if bless() {
            fs::write(&sidecar, &golden).expect("write golden sidecar");
            continue;
        }
        match fs::read_to_string(&sidecar) {
            Ok(expected) if expected == golden => {}
            Ok(expected) => failures.push(format!(
                "{}: output drifted from golden sidecar\n--- expected\n{expected}--- actual\n{golden}",
                path.display()
            )),
            Err(_) => failures.push(format!(
                "{}: missing golden sidecar {} (run with P4BID_BLESS=1 to create it)",
                path.display(),
                sidecar.display()
            )),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn accept_corpus_matches_golden_reports() {
    run_corpus("accept", true);
}

#[test]
fn reject_corpus_matches_golden_reports() {
    run_corpus("reject", false);
}

/// The corpus floors from the issue: shrinking the corpus is a test
/// regression even if every remaining manifest still passes.
#[test]
fn corpus_keeps_its_minimum_breadth() {
    assert!(manifests("accept").len() >= 6, "accept corpus shrank");
    assert!(manifests("reject").len() >= 8, "reject corpus shrank");
}
