//! Property-based tests for the topology fixpoint driver.
//!
//! Random topologies — DAGs, rings, self-loops, tangles — over a small
//! program pool must uphold the driver's contract whatever shape they
//! take: reports byte-identical across `--jobs` settings and repeated
//! runs, round counts inside the derived `n * |lattice| + 2` bound,
//! final ingress labels monotone over their declared seeds, and a
//! second engine epoch that is pure cache hits producing the same
//! verdicts.

use p4bid::topo::{check_topology, TopoEngine, TopoManifest, Topology};
use p4bid::CheckOptions;
use proptest::prelude::*;

/// The program pool: an accept-anywhere forwarder, a public writer that
/// rejects under a secret seed, and an unconditional explicit flow.
const POOL: [&str; 3] = [
    "control Fwd(inout <bit<8>, high> x) { apply { x = x + 8w1; } }",
    "control Ctr(inout <bit<8>, low> y) { apply { y = y + 8w1; } }",
    "control Leak(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
];

/// Per-switch / per-link knobs, indexed modulo the drawn vectors so
/// short vectors still configure every switch.
const LABELS: [Option<&str>; 3] = [None, Some("low"), Some("high")];

fn pick<T: Copy>(v: &[T], i: usize, default: T) -> T {
    if v.is_empty() {
        default
    } else {
        v[i % v.len()]
    }
}

/// Renders the drawn shape as a manifest and assembles it against the
/// in-memory pool. Every generated manifest is structurally valid by
/// construction: names are distinct, ports are globally unique, labels
/// come from the boundary lattice.
#[allow(clippy::too_many_arguments)]
fn build(
    n: usize,
    edges: &[(usize, usize)],
    seeds: &[usize],
    progs: &[usize],
    egress: &[usize],
    decl: &[usize],
    contracts: &[usize],
) -> Topology {
    let mut m = String::from("lattice = \"low < high\"\n");
    for i in 0..n {
        m.push_str(&format!("\n[switch s{i}]\nprogram = \"p{}.p4\"\n", pick(progs, i, 0) % 3));
        if let Some(l) = LABELS[pick(seeds, i, 0) % 3] {
            m.push_str(&format!("ingress = \"{l}\"\n"));
        }
        if let Some(l) = LABELS[pick(egress, i, 0) % 3] {
            m.push_str(&format!("egress = \"{l}\"\n"));
        }
        if pick(decl, i, 0) % 3 == 2 {
            m.push_str("declassify = true\n");
        }
    }
    for (k, &(a, b)) in edges.iter().enumerate() {
        m.push_str(&format!("\n[link s{}:o{k} -> s{}:i{k}]\n", a % n, b % n));
        if let Some(l) = LABELS[pick(contracts, k, 0) % 3] {
            m.push_str(&format!("contract = \"{l}\"\n"));
        }
    }
    let manifest = TopoManifest::parse(&m).expect("generated manifest parses");
    manifest
        .resolve_with(|path| {
            let ix: usize = path[1..path.len() - 3].parse().expect("pool path");
            Ok(POOL[ix].to_string())
        })
        .expect("generated topology assembles")
}

proptest! {
    /// The determinism contract and the round bound, over arbitrary
    /// topology shapes.
    #[test]
    fn fixpoint_is_deterministic_bounded_and_monotone(
        n in 1usize..5,
        edges in proptest::collection::vec((0usize..5, 0usize..5), 0..8),
        seeds in proptest::collection::vec(0usize..3, 1..5),
        progs in proptest::collection::vec(0usize..3, 1..5),
        egress in proptest::collection::vec(0usize..3, 1..5),
        decl in proptest::collection::vec(0usize..3, 1..5),
        contracts in proptest::collection::vec(0usize..3, 1..8),
    ) {
        let topo = build(n, &edges, &seeds, &progs, &egress, &decl, &contracts);
        let opts = CheckOptions::ifc();

        let reference = check_topology(&topo, &opts, 1);
        for jobs in [2usize, 8] {
            let r = check_topology(&topo, &opts, jobs);
            prop_assert_eq!(
                r.to_json(), reference.to_json(),
                "report differs at jobs={}", jobs
            );
        }
        let again = check_topology(&topo, &opts, 2);
        prop_assert_eq!(again.to_json(), reference.to_json(), "report differs across runs");

        // Termination bound: every round past the first must raise at
        // least one of the n labels, and each can only climb
        // |lattice| - 1 times; n * |lattice| + 2 over-approximates that
        // with slack for the seed and quiescence rounds.
        let lat = topo.lattice();
        let bound = (topo.switches().len() * lat.len() + 2) as u64;
        prop_assert!(reference.rounds <= bound, "rounds {} > bound {}", reference.rounds, bound);

        // Monotonicity: no switch's final ingress dropped below its
        // declared seed.
        for (sw, rep) in topo.switches().iter().zip(&reference.switches) {
            let final_in = lat.label(&rep.ingress).expect("report label in lattice");
            prop_assert!(
                lat.leq(sw.ingress, final_in),
                "switch {} final ingress `{}` below its seed", sw.name, rep.ingress
            );
        }
    }

    /// A second epoch over an unchanged topology re-runs the fixpoint
    /// entirely from the verdict cache: zero rechecks, same verdicts.
    #[test]
    fn unchanged_second_epoch_is_all_cache_hits(
        n in 1usize..4,
        edges in proptest::collection::vec((0usize..4, 0usize..4), 0..6),
        seeds in proptest::collection::vec(0usize..3, 1..4),
        progs in proptest::collection::vec(0usize..3, 1..4),
    ) {
        let topo = build(n, &edges, &seeds, &progs, &[], &[], &[]);
        let mut engine = TopoEngine::new(topo, CheckOptions::ifc(), 2);
        let first = engine.run_epoch();
        let second = engine.run_epoch();
        prop_assert_eq!(second.switch_rechecks, 0, "cached epoch re-checked a switch");
        prop_assert_eq!(
            second.as_batch_report().to_json(),
            first.as_batch_report().to_json(),
            "cached epoch changed verdicts"
        );
    }
}
