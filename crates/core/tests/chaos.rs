//! Chaos end-to-end tests: the real binary under deterministic fault
//! injection (`P4BID_FAULTS`) and signal-driven shutdown.
//!
//! Every scenario here pins a seed chosen so the splitmix decision is
//! known in advance — seed `9` at `panic=40` fires for exactly one of the
//! three corpus programs below (the content hash of `VICTIM`), and seed
//! `2` at `sock-eio=50` fires for connection id 0 but not 1. The suite
//! asserts the failure-domain contract end to end: an injected panic
//! becomes a deterministic `E-INTERNAL` verdict (byte-identical across
//! `--jobs 1/2/8`, never cached), injected slowness trips the wall-clock
//! guard, a poisoned connection is absorbed, and SIGTERM drains a busy
//! socket daemon instead of dropping its pending work.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const OK: &str = "control C(inout bit<8> x) { apply { x = x + 8w1; } }";
const LEAK: &str = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";
/// The program whose content hash fires `panic=40` under seed 9.
const VICTIM: &str = "control D(inout bit<16> y) { apply { y = y + 16w2; } }";

/// The pinned check-fault plan: panics `VICTIM`, leaves `OK`/`LEAK` alone.
const PANIC_FAULTS: &str = "9:panic=40";

fn p4bid() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p4bid"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p4bid-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A three-program corpus: one clean accept, one genuine reject, one
/// panic victim — so a chaotic run still exercises the ordinary verdicts
/// around the contained fault.
fn corpus_dir(tag: &str) -> PathBuf {
    let dir = scratch_dir(tag);
    std::fs::write(dir.join("a.p4"), OK).unwrap();
    std::fs::write(dir.join("b.p4"), LEAK).unwrap();
    std::fs::write(dir.join("c.p4"), VICTIM).unwrap();
    dir
}

fn batch_with_faults(dir: &std::path::Path, faults: &str, extra: &[&str]) -> Output {
    p4bid()
        .arg("batch")
        .arg(dir)
        .args(extra)
        .env("P4BID_FAULTS", faults)
        .output()
        .expect("batch runs")
}

/// An injected worker panic becomes a deterministic `E-INTERNAL` verdict:
/// the process survives, exits with the ordinary reject code, reports the
/// other programs normally, and emits byte-identical output across
/// `--jobs 1/2/8` — while the same run without `P4BID_FAULTS` accepts the
/// victim, proving the panic was the injection and nothing else.
#[test]
fn injected_panic_is_contained_and_deterministic_across_jobs() {
    let dir = corpus_dir("panic");

    let mut outputs = Vec::new();
    for jobs in ["1", "2", "8"] {
        let out = batch_with_faults(&dir, PANIC_FAULTS, &["--jobs", jobs, "--stats-json"]);
        assert_eq!(out.status.code(), Some(1), "reject exit, not a crash (jobs={jobs})");
        let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
        assert!(stdout.contains("E-INTERNAL @ 0:0"), "{stdout}");
        let victim_row = stdout.lines().find(|l| l.contains("c.p4")).expect("victim row");
        assert!(victim_row.contains("REJECT") && victim_row.contains("E-INTERNAL"), "{victim_row}");
        let leak_row = stdout.lines().find(|l| l.contains("b.p4")).expect("leak row");
        assert!(leak_row.contains("REJECT") && !leak_row.contains("E-INTERNAL"), "{leak_row}");
        assert!(stdout.contains("3 program(s): 1 accepted, 2 rejected"), "{stdout}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("\"schema\": \"p4bid-stats/5\""), "{stderr}");
        assert!(stderr.contains("\"panics\": 1"), "{stderr}");
        outputs.push(stdout);
    }
    assert_eq!(outputs[0], outputs[1], "jobs 1 vs 2");
    assert_eq!(outputs[0], outputs[2], "jobs 1 vs 8");

    // Control: without the fault plan the victim is a perfectly fine
    // program, and nothing is internal-errored.
    let clean = p4bid().arg("batch").arg(&dir).output().expect("batch runs");
    assert_eq!(clean.status.code(), Some(1), "the leak still rejects");
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(!stdout.contains("E-INTERNAL"), "{stdout}");
    assert!(stdout.contains("3 program(s): 2 accepted, 1 rejected"), "{stdout}");

    let _ = std::fs::remove_dir_all(dir);
}

/// Injected slowness (`slow=100` at 250 ms) against a 25 ms wall-clock
/// budget trips the `E-TIMEOUT` guard on every program — the resource
/// guard path, exercised deterministically.
#[test]
fn injected_slowness_trips_the_wall_clock_guard() {
    let dir = corpus_dir("slow");
    let out = batch_with_faults(
        &dir,
        "9:slow=100,slow-ms=250",
        &["--jobs", "2", "--check-timeout-ms", "25", "--stats-json"],
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("E-TIMEOUT"), "{stdout}");
    assert!(stdout.contains("3 program(s): 0 accepted, 3 rejected"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"timeouts\": 3"), "{stderr}");
    let _ = std::fs::remove_dir_all(dir);
}

/// A panicking body is never answered from the verdict cache: across two
/// identical epochs the steady program hits the cache once, while the
/// victim misses both times and panics both times.
#[test]
fn panicking_bodies_are_never_cached() {
    let epoch = format!(
        "{{\"id\": \"victim\", \"source\": \"{}\"}}\n{{\"id\": \"steady\", \"source\": \"{}\"}}\n",
        VICTIM.replace('"', "\\\""),
        OK.replace('"', "\\\""),
    );
    let feed = format!("{epoch}\n{epoch}");
    let mut child = p4bid()
        .args(["serve", "--jobs", "2", "--cache-cap", "64", "--stats-json"])
        .env("P4BID_FAULTS", PANIC_FAULTS)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child.stdin.take().expect("stdin piped").write_all(feed.as_bytes()).expect("feed written");
    let out = child.wait_with_output().expect("serve exits");

    assert_eq!(out.status.code(), Some(1), "E-INTERNAL verdicts reject");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    let internal_rows = stdout.lines().filter(|l| l.contains("E-INTERNAL")).count();
    assert_eq!(internal_rows, 2, "the victim re-panics in epoch 2: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"panics\": 2"), "{stderr}");
    // Epoch 2: `steady` is a cache hit, `victim` a miss again — its
    // transient verdict was refused at insert.
    assert!(stderr.contains("\"cache_hits\": 1"), "{stderr}");
    assert!(stderr.contains("\"cache_misses\": 3"), "{stderr}");
}

/// Waits for `child` to exit, killing it after `limit` so a wedged daemon
/// fails the test instead of hanging the suite.
fn wait_with_deadline(mut child: Child, limit: Duration) -> Output {
    let start = Instant::now();
    loop {
        match child.try_wait().expect("poll child") {
            Some(_) => return child.wait_with_output().expect("collect output"),
            None if start.elapsed() > limit => {
                let _ = child.kill();
                let out = child.wait_with_output().expect("collect output");
                panic!(
                    "daemon did not exit within {limit:?}; stderr so far: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Incremental reader over a child's stderr, for gating on daemon log
/// lines (same idiom as the serve e2e suite).
#[cfg(unix)]
struct Tail {
    seen: Arc<Mutex<Vec<u8>>>,
}

#[cfg(unix)]
impl Tail {
    fn new(mut from: impl std::io::Read + Send + 'static) -> Self {
        let seen = Arc::new(Mutex::new(Vec::<u8>::new()));
        let sink = Arc::clone(&seen);
        std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => sink.lock().expect("tail lock").extend_from_slice(&buf[..n]),
                }
            }
        });
        Tail { seen }
    }

    fn contents(&self) -> String {
        String::from_utf8_lossy(&self.seen.lock().expect("tail lock")).into_owned()
    }

    fn wait_for(&self, needle: &str) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !self.contents().contains(needle) {
            assert!(
                Instant::now() < deadline,
                "never saw {needle:?} in stderr:\n{}",
                self.contents()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

#[cfg(unix)]
fn connect_retry(socket: &std::path::Path) -> std::os::unix::net::UnixStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match std::os::unix::net::UnixStream::connect(socket) {
            Ok(s) => return s,
            Err(_) => {
                assert!(Instant::now() < deadline, "socket never came up");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// An injected `EIO` on a socket connection (seed 2 fires for connection
/// id 0 only) is absorbed: the error is logged and counted, and a second
/// connection's work completes normally.
#[cfg(unix)]
#[test]
fn injected_socket_eio_poisons_one_connection_not_the_daemon() {
    let dir = scratch_dir("sock-eio");
    let socket = dir.join("p4bid.sock");
    let mut child = p4bid()
        .args(["serve", "--socket", socket.to_str().unwrap(), "--max-epochs", "1", "--stats-json"])
        .env("P4BID_FAULTS", "2:sock-eio=50")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stderr = Tail::new(child.stderr.take().expect("stderr piped"));

    let doomed = connect_retry(&socket);
    stderr.wait_for("connection 0 error: injected fault: EIO reading socket");
    drop(doomed);

    let mut ok = connect_retry(&socket);
    stderr.wait_for("connection 1: accepted");
    ok.write_all(
        format!("{{\"id\": \"survivor\", \"source\": \"{}\"}}\n", OK.replace('"', "\\\""))
            .as_bytes(),
    )
    .expect("request written");
    drop(ok); // close flushes the epoch; --max-epochs 1 ends the daemon

    let out = wait_with_deadline(child, Duration::from_secs(30));
    assert_eq!(out.status.code(), Some(0), "{}", stderr.contents());
    assert!(String::from_utf8_lossy(&out.stdout).contains("survivor"));
    let log = stderr.contents();
    assert!(log.contains("\"conn_errors\": 1"), "{log}");
    assert!(log.contains("\"connections\": 2"), "{log}");
    let _ = std::fs::remove_dir_all(dir);
}

/// SIGTERM on a busy socket daemon drains instead of drops: the pending
/// request (submitted on a connection that never closes) is still checked
/// and reported, the final stats document flushes with `drained` counted,
/// the socket file is unlinked, and the exit code is the ordinary verdict
/// code — not a signal death.
#[cfg(unix)]
#[test]
fn sigterm_drains_pending_work_and_unlinks_the_socket() {
    let dir = scratch_dir("drain");
    let socket = dir.join("p4bid.sock");
    let mut child = p4bid()
        .args(["serve", "--socket", socket.to_str().unwrap(), "--jobs", "2", "--stats-json"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stderr = Tail::new(child.stderr.take().expect("stderr piped"));

    let mut pending = connect_retry(&socket);
    stderr.wait_for("connection 0: accepted");
    pending
        .write_all(
            format!("{{\"id\": \"pending\", \"source\": \"{}\"}}\n", OK.replace('"', "\\\""))
                .as_bytes(),
        )
        .expect("request written");
    // The connection stays open: no epoch cut is coming. Give the
    // connection thread time to enqueue the line, then ask for shutdown.
    std::thread::sleep(Duration::from_millis(500));
    let kill =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(kill.success(), "SIGTERM delivered");

    let out = wait_with_deadline(child, Duration::from_secs(30));
    drop(pending);
    assert_eq!(out.status.code(), Some(0), "clean verdict exit, not a signal death");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pending") && stdout.contains("accept"), "{stdout}");
    let log = stderr.contents();
    assert!(log.contains("\"schema\": \"p4bid-stats/5\""), "final stats flushed: {log}");
    assert!(log.contains("\"drained\": 1"), "{log}");
    assert!(!socket.exists(), "socket file must be unlinked on drain");
    let _ = std::fs::remove_dir_all(dir);
}

/// A panicking check never poisons the prefix-snapshot tree: three
/// programs share a two-item prefix, one of them is fault-picked to panic
/// every epoch, and with `--refresh-every 1` the surviving programs'
/// snapshots serve later epochs — `E-INTERNAL` for the victim, correct
/// prefix-resumed verdicts for its prefix-sharing siblings, byte-identical
/// across epochs and `--jobs`.
#[test]
fn injected_panics_never_poison_the_snapshot_tree() {
    // The workspace's 64-bit FNV-1a (`p4bid_ast::fnv`) — the key the fault
    // plan fires on.
    fn fnv(bytes: &[u8]) -> u64 {
        bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
        })
    }
    let plan = p4bid::faults::FaultPlan::parse(PANIC_FAULTS).expect("pinned plan parses");
    let fires = |src: &str| plan.fires(p4bid::faults::Site::WorkerPanic, fnv(src.as_bytes()));
    // A comment tail tunes each body's content hash without touching the
    // shared item prefix, so the fault decision is forced per program.
    let tune = |body: String, want: bool| {
        (0u32..20_000)
            .map(|i| format!("{body}// {i}\n"))
            .find(|s| fires(s) == want)
            .expect("a tuned body exists")
    };
    const SHARED: &str = "header sh_t { <bit<8>, high> f; }\nstruct shs { sh_t h; }\n";
    let clean = tune(
        format!("{SHARED}control A(inout shs s) {{ apply {{ s.h.f = s.h.f + 8w1; }} }}\n"),
        false,
    );
    let leak = tune(
        format!(
            "{SHARED}control L(inout shs s, inout <bit<8>, low> l) {{ apply {{ l = s.h.f; }} }}\n"
        ),
        false,
    );
    let victim = tune(
        format!("{SHARED}control V(inout shs s) {{ apply {{ s.h.f = s.h.f + 8w2; }} }}\n"),
        true,
    );

    // The victim goes first: a caught panic swaps the torn worker session
    // for a fresh one, discarding everything its overlay had accumulated,
    // so with `--jobs 1` the siblings must run *after* the swap for their
    // names to survive into the refreeze harvest.
    let epoch = format!(
        "{{\"id\": \"victim\", \"source\": \"{}\"}}\n\
         {{\"id\": \"clean\", \"source\": \"{}\"}}\n\
         {{\"id\": \"leak\", \"source\": \"{}\"}}\n",
        victim.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n"),
        clean.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n"),
        leak.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n"),
    );
    let feed = format!("{epoch}\n{epoch}\n{epoch}");

    let mut outputs = Vec::new();
    for jobs in ["1", "2"] {
        let mut child = p4bid()
            .args([
                "serve",
                "--jobs",
                jobs,
                "--cache-cap",
                "0",
                "--refresh-every",
                "1",
                "--json",
                "--stats-json",
            ])
            .env("P4BID_FAULTS", PANIC_FAULTS)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("serve spawns");
        child.stdin.take().expect("stdin piped").write_all(feed.as_bytes()).expect("feed written");
        let out = child.wait_with_output().expect("serve exits");
        assert_eq!(out.status.code(), Some(1), "rejects, never crashes (jobs={jobs})");

        let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
        let docs: Vec<&str> = stdout.lines().collect();
        assert_eq!(docs.len(), 3, "three epoch documents: {stdout}");
        // Identical verdicts every epoch: the victim's panic is contained
        // and its siblings resume from clean snapshots only.
        let strip = |doc: &str| doc.split_once(", \"programs\"").expect("epoch doc").1.to_string();
        assert_eq!(strip(docs[0]), strip(docs[1]), "epoch 0 vs 1");
        assert_eq!(strip(docs[0]), strip(docs[2]), "epoch 0 vs 2");
        for doc in &docs {
            assert!(doc.contains("\"name\": \"clean\", \"status\": \"accept\""), "{doc}");
            assert!(doc.contains("E-EXPLICIT-FLOW"), "{doc}");
            assert!(doc.contains("E-INTERNAL"), "{doc}");
        }

        let stderr = String::from_utf8_lossy(&out.stderr);
        let stat = |field: &str| -> u64 {
            let tail = stderr.split(&format!("\"{field}\": ")).nth(1).unwrap_or_else(|| {
                panic!("stats field `{field}` present: {stderr}");
            });
            tail.split(|c: char| !c.is_ascii_digit()).next().unwrap().parse().expect(field)
        };
        assert_eq!(stat("panics"), 3, "the victim re-panics every epoch");
        assert_eq!(stat("refreezes"), 2, "one refreeze per epoch boundary");
        assert!(stat("prefix_inserts") > 0, "clean runs snapshot after the refreeze: {stderr}");
        assert!(stat("prefix_hits") > 0, "later epochs resume from the tree: {stderr}");
        outputs.push(stdout);
    }
    assert_eq!(outputs[0], outputs[1], "jobs 1 vs 2");
}
