//! End-to-end tests for the streaming ingest daemon (`p4bid serve` /
//! `p4bid watch`): the real binary, fed over stdin / a Unix socket / a
//! watched directory, with per-epoch stdout asserted **byte-identical**
//! to `p4bid batch` on the same inputs — the serve determinism contract,
//! across `--jobs 1/2/8`.

use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const OK: &str = "control C(inout bit<8> x) { apply { x = x + 8w1; } }";
const OK2: &str = "control D(inout bit<16> y) { apply { y = y + 16w2; } }";
const LEAK: &str = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";

fn p4bid() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p4bid"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p4bid-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// `p4bid batch DIR [--json]` stdout — the byte-level reference every
/// serve epoch is held to.
fn batch_stdout(dir: &std::path::Path, json: bool) -> String {
    let mut cmd = p4bid();
    cmd.arg("batch").arg(dir);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("batch runs");
    String::from_utf8(out.stdout).expect("utf-8 batch report")
}

/// Runs `p4bid serve` with `feed` on stdin and returns its output.
fn serve_with_feed(args: &[&str], feed: &str) -> Output {
    let mut child = p4bid()
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child.stdin.take().expect("stdin piped").write_all(feed.as_bytes()).expect("feed written");
    // Dropping stdin closes the feed; EOF flushes the final epoch.
    child.wait_with_output().expect("serve exits")
}

/// Feed lines for every `.p4` file of `dir`, sorted by name — the same
/// input order `p4bid batch DIR` uses, so the reports must match. The
/// `id` is explicit (the basename, as `batch` reports it): a pathless
/// request would default to the *full path* and never match.
fn path_feed(dir: &std::path::Path) -> String {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "p4"))
        .collect();
    names.sort();
    names
        .iter()
        .map(|p| {
            format!(
                "{{\"id\": \"{}\", \"path\": \"{}\"}}\n",
                p.file_name().expect("file name").to_string_lossy(),
                p.display()
            )
        })
        .collect()
}

#[test]
fn serve_epochs_are_byte_identical_to_batch_across_jobs() {
    let epoch1 = scratch_dir("feed-a");
    std::fs::write(epoch1.join("a.p4"), OK).unwrap();
    std::fs::write(epoch1.join("b.p4"), LEAK).unwrap();
    std::fs::write(epoch1.join("c.p4"), "control {").unwrap();
    let epoch2 = scratch_dir("feed-b");
    std::fs::write(epoch2.join("d.p4"), OK2).unwrap();
    std::fs::write(epoch2.join("e.p4"), OK).unwrap();

    // Two epochs: a blank line splits them, EOF flushes the second.
    let feed = format!("{}\n{}", path_feed(&epoch1), path_feed(&epoch2));
    let expected = format!("{}{}", batch_stdout(&epoch1, false), batch_stdout(&epoch2, false));
    for jobs in ["1", "2", "8"] {
        let out = serve_with_feed(&["--jobs", jobs], &feed);
        assert_eq!(out.status.code(), Some(1), "epoch 1 has rejects (jobs={jobs})");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            expected,
            "serve stdout must be the concatenated batch reports (jobs={jobs})"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("epoch 0: checked 3 program(s)"), "{stderr}");
        assert!(stderr.contains("epoch 1: checked 2 program(s)"), "{stderr}");
        assert!(stderr.contains("served 2 epoch(s): 5 program(s) checked"), "{stderr}");
    }

    let _ = std::fs::remove_dir_all(epoch1);
    let _ = std::fs::remove_dir_all(epoch2);
}

#[test]
fn serve_json_emits_one_epoch_document_per_line() {
    let dir = scratch_dir("feed-json");
    std::fs::write(dir.join("a.p4"), OK).unwrap();
    std::fs::write(dir.join("z.p4"), LEAK).unwrap();

    let feed = format!("{}\n{}", path_feed(&dir), path_feed(&dir));
    let out = serve_with_feed(&["--json", "--jobs", "2"], &feed);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "one NDJSON document per epoch: {stdout}");
    assert!(lines[0].starts_with("{\"schema\": \"p4bid-serve-report/2\", \"epoch\": 0, "));
    assert!(lines[1].starts_with("{\"schema\": \"p4bid-serve-report/2\", \"epoch\": 1, "));
    // Apart from the epoch number, the two epoch documents are identical —
    // and their program objects are the exact bytes `p4bid batch --json`
    // embeds for the same inputs.
    assert_eq!(lines[0].replace("\"epoch\": 0", "\"epoch\": 1"), lines[1]);
    let batch_json = batch_stdout(&dir, true);
    for program_line in batch_json.lines().filter(|l| l.trim_start().starts_with("{\"index\"")) {
        let object = program_line.trim().trim_end_matches(',');
        assert!(lines[0].contains(object), "{object} not embedded in {}", lines[0]);
    }

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn serve_inline_sources_stats_and_refresh() {
    let feed = format!(
        "{{\"id\": \"inline-ok\", \"source\": \"{}\"}}\n\n{{\"id\": \"inline-ok2\", \"source\": \"{}\"}}\n",
        OK.replace('"', "\\\""),
        OK2.replace('"', "\\\""),
    );
    let out = serve_with_feed(&["--jobs", "1", "--refresh-every", "1", "--stats-json"], &feed);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inline-ok") && stdout.contains("inline-ok2"), "{stdout}");
    let epoch_summaries =
        stdout.lines().filter(|l| *l == "1 program(s): 1 accepted, 0 rejected").count();
    assert_eq!(epoch_summaries, 2, "two one-program epoch tables: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("{\"schema\": \"p4bid-stats/5\", \"command\": \"serve\", \"epochs\": 2, "),
        "{stderr}"
    );
    assert!(!stdout.contains("p4bid-stats"), "stats stay off stdout: {stdout}");
}

#[test]
fn serve_skips_malformed_lines_without_dying() {
    let feed = format!(
        "this is not json\n{{\"id\": \"ok\", \"source\": \"{}\"}}\n{{\"path\": \"/nonexistent/ghost.p4\"}}\n",
        OK.replace('"', "\\\"")
    );
    let out = serve_with_feed(&["--jobs", "1"], &feed);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skipped request:"), "{stderr}");
    assert!(
        stderr.contains("served 1 epoch(s): 1 program(s) checked, 2 request(s) skipped"),
        "{stderr}"
    );
}

#[test]
fn serve_usage_errors() {
    let bad_jobs = p4bid().args(["serve", "--jobs", "0"]).output().expect("runs");
    assert_eq!(bad_jobs.status.code(), Some(2));
    let bad_epochs = p4bid().args(["serve", "--max-epochs", "soon"]).output().expect("runs");
    assert_eq!(bad_epochs.status.code(), Some(2));
    let no_dir = p4bid().args(["watch"]).output().expect("runs");
    assert_eq!(no_dir.status.code(), Some(2));
    let not_a_dir = p4bid().args(["watch", "/nonexistent/ghost-dir"]).output().expect("runs");
    assert_eq!(not_a_dir.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&not_a_dir.stderr).contains("not a directory"));
}

/// Waits for `child` to exit, killing it after `limit` so a wedged daemon
/// fails the test instead of hanging the suite.
fn wait_with_deadline(mut child: Child, limit: Duration) -> Output {
    let start = Instant::now();
    loop {
        match child.try_wait().expect("poll child") {
            Some(_) => return child.wait_with_output().expect("collect output"),
            None if start.elapsed() > limit => {
                let _ = child.kill();
                let out = child.wait_with_output().expect("collect output");
                panic!(
                    "daemon did not exit within {limit:?}; stdout so far: {}",
                    String::from_utf8_lossy(&out.stdout)
                );
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn watch_daemon_serves_epochs_as_files_drop() {
    let dir = scratch_dir("watch");
    std::fs::write(dir.join("first.p4"), OK).unwrap();

    let mut child = p4bid()
        .args([
            "watch",
            dir.to_str().unwrap(),
            "--interval-ms",
            "25",
            "--max-epochs",
            "2",
            "--jobs",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("watch spawns");

    // Read the daemon's stdout incrementally so the second file is only
    // dropped once the initial full-scan epoch has been reported.
    let stdout = child.stdout.take().expect("stdout piped");
    let seen = Arc::new(Mutex::new(Vec::<u8>::new()));
    let seen2 = Arc::clone(&seen);
    let reader = std::thread::spawn(move || {
        let mut stdout = stdout;
        let mut buf = [0u8; 4096];
        loop {
            match stdout.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => seen2.lock().unwrap().extend_from_slice(&buf[..n]),
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if String::from_utf8_lossy(&seen.lock().unwrap()).contains("program(s):") {
            break;
        }
        assert!(Instant::now() < deadline, "first epoch never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Atomic drop (write then rename) so no scan tick can observe a
    // half-written file — the contract the scanner documents for writers.
    std::fs::write(dir.join("second.tmp"), LEAK).unwrap();
    std::fs::rename(dir.join("second.tmp"), dir.join("second.p4")).unwrap();

    let out = wait_with_deadline(child, Duration::from_secs(30));
    reader.join().unwrap();
    assert_eq!(out.status.code(), Some(1), "the dropped-in leak fails the run");

    // Epoch 0 is the full initial scan, epoch 1 exactly the changed file:
    // each byte-identical to `p4bid batch` over those inputs.
    let only_first = scratch_dir("watch-ref1");
    std::fs::write(only_first.join("first.p4"), OK).unwrap();
    let only_second = scratch_dir("watch-ref2");
    std::fs::write(only_second.join("second.p4"), LEAK).unwrap();
    let expected =
        format!("{}{}", batch_stdout(&only_first, false), batch_stdout(&only_second, false));
    assert_eq!(String::from_utf8_lossy(&seen.lock().unwrap()), expected);

    for d in [dir, only_first, only_second] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// The watch log attributes an edit to the first changed top-level item:
/// rewriting only the last of three items logs `changed: … (first change
/// at item 3/3)`, while the initial sighting of the file (no previous
/// fingerprint to diff against) logs a bare `changed:` line.
#[test]
fn watch_log_attributes_the_first_changed_item() {
    const THREE_ITEMS_V1: &str = "header h_t { bit<8> f; }\n\
         control A(inout bit<8> x) { apply { x = x + 8w1; } }\n\
         control B(inout bit<8> y) { apply { y = y + 8w2; } }\n";
    const THREE_ITEMS_V2: &str = "header h_t { bit<8> f; }\n\
         control A(inout bit<8> x) { apply { x = x + 8w1; } }\n\
         control B(inout bit<8> y) { apply { y = y + 8w3; } }\n";

    let dir = scratch_dir("watch-attr");
    std::fs::write(dir.join("multi.p4"), THREE_ITEMS_V1).unwrap();

    let mut child = p4bid()
        .args(["watch", dir.to_str().unwrap(), "--interval-ms", "25", "--max-epochs", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("watch spawns");

    let stdout = child.stdout.take().expect("stdout piped");
    let seen = Arc::new(Mutex::new(Vec::<u8>::new()));
    let seen2 = Arc::clone(&seen);
    let reader = std::thread::spawn(move || {
        let mut stdout = stdout;
        let mut buf = [0u8; 4096];
        loop {
            match stdout.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => seen2.lock().unwrap().extend_from_slice(&buf[..n]),
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if String::from_utf8_lossy(&seen.lock().unwrap()).contains("program(s):") {
            break;
        }
        assert!(Instant::now() < deadline, "first epoch never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Atomic rewrite of the same file, touching only the last item.
    std::fs::write(dir.join("multi.tmp"), THREE_ITEMS_V2).unwrap();
    std::fs::rename(dir.join("multi.tmp"), dir.join("multi.p4")).unwrap();

    let out = wait_with_deadline(child, Duration::from_secs(30));
    reader.join().unwrap();
    assert_eq!(out.status.code(), Some(0), "both versions accept");
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("changed: multi.p4\n"), "initial sighting is unattributed: {log}");
    assert!(
        log.contains("changed: multi.p4 (first change at item 3/3)"),
        "the edit is pinned to the last item: {log}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[cfg(unix)]
#[test]
fn serve_socket_accepts_a_connection() {
    use std::os::unix::net::UnixStream;

    let dir = scratch_dir("socket");
    let socket = dir.join("p4bid.sock");
    let child = p4bid()
        .args(["serve", "--socket", socket.to_str().unwrap(), "--json", "--max-epochs", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stream = loop {
        match UnixStream::connect(&socket) {
            Ok(s) => break s,
            Err(_) => {
                assert!(Instant::now() < deadline, "socket never came up");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    stream
        .write_all(
            format!("{{\"id\": \"s\", \"source\": \"{}\"}}\n", OK.replace('"', "\\\"")).as_bytes(),
        )
        .expect("request written");
    drop(stream); // connection close flushes the epoch

    let out = wait_with_deadline(child, Duration::from_secs(30));
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("{\"schema\": \"p4bid-serve-report/2\", \"epoch\": 0, "),
        "{stdout}"
    );
    assert!(stdout.contains("\"name\": \"s\", \"status\": \"accept\""), "{stdout}");
    let _ = std::fs::remove_dir_all(dir);
}

/// Incremental reader over a child's stderr: the socket-resilience tests
/// gate their scripted interleavings on daemon log lines.
struct Tail {
    seen: Arc<Mutex<Vec<u8>>>,
}

impl Tail {
    fn new(mut from: impl std::io::Read + Send + 'static) -> Self {
        let seen = Arc::new(Mutex::new(Vec::<u8>::new()));
        let sink = Arc::clone(&seen);
        std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => sink.lock().unwrap().extend_from_slice(&buf[..n]),
                }
            }
        });
        Tail { seen }
    }

    fn contents(&self) -> String {
        String::from_utf8_lossy(&self.seen.lock().unwrap()).into_owned()
    }

    fn wait_for(&self, needle: &str) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !self.contents().contains(needle) {
            assert!(
                Instant::now() < deadline,
                "`{needle}` never appeared on stderr; saw: {}",
                self.contents()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

#[cfg(unix)]
fn connect_retry(socket: &std::path::Path) -> std::os::unix::net::UnixStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match std::os::unix::net::UnixStream::connect(socket) {
            Ok(s) => return s,
            Err(_) => {
                assert!(Instant::now() < deadline, "socket never came up");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// A client that vanishes mid-request is logged and counted — never fatal:
/// a second client's feed completes and the daemon exits cleanly.
#[cfg(unix)]
#[test]
fn serve_socket_survives_a_midline_disconnect() {
    let dir = scratch_dir("socket-torn");
    let socket = dir.join("p4bid.sock");
    let mut child = p4bid()
        .args(["serve", "--socket", socket.to_str().unwrap(), "--jobs", "1", "--max-epochs", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stderr = Tail::new(child.stderr.take().expect("stderr piped"));

    let mut torn = connect_retry(&socket);
    stderr.wait_for("connection 0: accepted");
    torn.write_all(b"{\"id\": \"torn\", \"sour").expect("half a request");
    drop(torn); // disconnect mid-line
    stderr.wait_for("connection 0: skipped request:");

    let mut ok = connect_retry(&socket);
    stderr.wait_for("connection 1: accepted");
    ok.write_all(
        format!("{{\"id\": \"survivor\", \"source\": \"{}\"}}\n", OK.replace('"', "\\\""))
            .as_bytes(),
    )
    .expect("full request");
    drop(ok); // close flushes the epoch

    let out = wait_with_deadline(child, Duration::from_secs(30));
    assert_eq!(out.status.code(), Some(0), "{}", stderr.contents());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("survivor"), "{stdout}");
    assert!(
        stderr.contents().contains("served 1 epoch(s): 1 program(s) checked, 1 request(s) skipped"),
        "{}",
        stderr.contents()
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// A newline-free 10 MiB feed is dropped as it streams (never buffered),
/// counted as skipped, and the daemon resynchronizes at the next newline.
#[test]
fn serve_survives_a_10mib_newline_free_feed() {
    let mut feed = "x".repeat(10 * 1024 * 1024);
    feed.push('\n');
    feed.push_str(&format!("{{\"id\": \"after\", \"source\": \"{}\"}}\n", OK.replace('"', "\\\"")));
    let out = serve_with_feed(&["--jobs", "1"], &feed);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("after"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("10485760-byte line exceeds the 1048576-byte cap"), "{stderr}");
    assert!(stderr.contains("1 request(s) skipped"), "{stderr}");
}

/// One scripted four-producer run: producers connect sequentially (gated
/// on the daemon's `connection N: accepted` log lines, pinning connection
/// ids), each submits two requests, and all four stay connected so the
/// epoch cut is the 8th arrival tripping `--max-epoch 8` — the epoch's
/// content and order are then fixed by the `(connection id, arrival seq)`
/// sequencer no matter how the submissions interleave.
#[cfg(unix)]
fn deterministic_producer_run(jobs: &str, tag: &str) -> String {
    let dir = scratch_dir(tag);
    let socket = dir.join("p4bid.sock");
    let mut child = p4bid()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--json",
            "--jobs",
            jobs,
            "--max-epoch",
            "8",
            "--max-epochs",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stderr = Tail::new(child.stderr.take().expect("stderr piped"));

    let mut producers = Vec::new();
    for i in 0..4 {
        let mut stream = connect_retry(&socket);
        stderr.wait_for(&format!("connection {i}: accepted"));
        for (j, body) in [OK, OK2].iter().enumerate() {
            stream
                .write_all(
                    format!(
                        "{{\"id\": \"p{i}-{j}\", \"source\": \"{}\"}}\n",
                        body.replace('"', "\\\"")
                    )
                    .as_bytes(),
                )
                .expect("request written");
        }
        producers.push(stream);
    }

    let out = wait_with_deadline(child, Duration::from_secs(30));
    drop(producers);
    assert_eq!(out.status.code(), Some(0), "{}", stderr.contents());
    let _ = std::fs::remove_dir_all(dir);
    String::from_utf8(out.stdout).expect("utf-8 report")
}

/// The determinism-under-concurrency contract: with 4 concurrent
/// producers, epoch output is byte-identical across repeated runs of the
/// same scripted interleaving and across `--jobs 1/2/8`, and programs
/// appear in `(connection id, arrival seq)` order.
#[cfg(unix)]
#[test]
fn four_concurrent_producers_yield_deterministic_epoch_output() {
    let runs = [("j1", "1"), ("j2", "2"), ("j8", "8"), ("j2-again", "2")];
    let outputs: Vec<String> = runs
        .iter()
        .map(|(tag, jobs)| deterministic_producer_run(jobs, &format!("socket-4p-{tag}")))
        .collect();

    let first = &outputs[0];
    assert!(first.contains("\"total\": 8"), "one epoch over all 8 requests: {first}");
    let mut last = 0;
    for i in 0..4 {
        for j in 0..2 {
            let needle = format!("\"name\": \"p{i}-{j}\"");
            let pos =
                first.find(&needle).unwrap_or_else(|| panic!("{needle} missing from {first}"));
            assert!(pos > last, "sequencer order violated at {needle}: {first}");
            last = pos;
        }
    }
    for (run, out) in runs.iter().zip(&outputs).skip(1) {
        assert_eq!(out, first, "run {} diverged from run {}", run.0, runs[0].0);
    }
}

/// Resubmitting an epoch is answered from the verdict cache — and the
/// report is byte-identical to the fresh check, with the hit/miss/size
/// counters surfaced in the `p4bid-stats/5` document.
#[test]
fn repeat_submissions_hit_the_verdict_cache_byte_identically() {
    let epoch = format!(
        "{{\"id\": \"a\", \"source\": \"{}\"}}\n{{\"id\": \"b\", \"source\": \"{}\"}}\n",
        OK.replace('"', "\\\""),
        LEAK.replace('"', "\\\""),
    );
    let feed = format!("{epoch}\n{epoch}\n{epoch}");
    let out = serve_with_feed(&["--jobs", "2", "--json", "--stats-json"], &feed);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "three NDJSON epoch documents: {stdout}");
    assert_eq!(
        lines[0].replace("\"epoch\": 0", "\"epoch\": 1"),
        lines[1],
        "cache hits must render byte-identically"
    );
    assert_eq!(lines[0].replace("\"epoch\": 0", "\"epoch\": 2"), lines[2]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("\"cache_hits\": 4, \"cache_misses\": 2, \"cache_size\": 2"),
        "{stderr}"
    );
}

/// `--policy` resolves per-program options inside every epoch: the same
/// body is accepted under the granting rule and rejected without it, and
/// the partitioned epochs stay byte-identical across worker counts and
/// across cached resubmission.
#[test]
fn serve_policies_stay_deterministic_across_jobs() {
    let declassifying = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) \
                         { apply { l = declassify(h); } }";
    let dir = scratch_dir("policy");
    let policy = dir.join("p4bid.policy");
    std::fs::write(&policy, "[declass-*]\ndeclassify = true\n").unwrap();
    let epoch = format!(
        "{{\"id\": \"declass-a\", \"source\": \"{0}\"}}\n\
         {{\"id\": \"plain-b\", \"source\": \"{0}\"}}\n",
        declassifying.replace('"', "\\\""),
    );
    let feed = format!("{epoch}\n{epoch}");
    let mut outputs = Vec::new();
    for jobs in ["1", "2", "8"] {
        let out = serve_with_feed(
            &["--jobs", jobs, "--json", "--policy", policy.to_str().unwrap()],
            &feed,
        );
        assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).expect("utf-8");
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines.len(), 2, "{stdout}");
        assert!(lines[0].contains("\"name\": \"declass-a\", \"status\": \"accept\""), "{stdout}");
        assert!(lines[0].contains("\"name\": \"plain-b\", \"status\": \"reject\""), "{stdout}");
        assert!(lines[0].contains("\"code\": \"E-DECLASSIFY-FORBIDDEN\""), "{stdout}");
        // The second (all-hit, cached) epoch renders identically.
        assert_eq!(lines[0].replace("\"epoch\": 0", "\"epoch\": 1"), lines[1], "{stdout}");
        outputs.push(stdout);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
    let _ = std::fs::remove_dir_all(dir);
}
