//! Property tests for the hash-consing type pool: within one pool,
//! structural equality of security types is *equivalent* to id equality —
//! `ty_eq(a, b) ⟺ pool.intern(a) == pool.intern(b)` — over randomly
//! generated type trees, including product-lattice labels.
//!
//! The generator builds plain `Spec` trees (an independent, pool-free
//! model of the type structure) so the equivalence is checked against a
//! representation the pool cannot influence.

use p4bid_ast::intern::{Interner, Symbol};
use p4bid_ast::pool::TyPool;
use p4bid_ast::sectype::{FieldList, SecTy, TyId};
use p4bid_lattice::{Label, Lattice};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A pool-free model of a resolved security type: structural shape plus
/// label indices. Derived `Eq` on this model is the "ground truth"
/// structural equality the pool must reproduce via ids.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Spec {
    Bool,
    Int,
    Bit(u16),
    Unit,
    Record(Vec<(u8, LabeledSpec)>),
    Header(Vec<(u8, LabeledSpec)>),
    Stack(Box<LabeledSpec>, u32),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct LabeledSpec {
    spec: Spec,
    label: u8,
}

/// The product lattice `{⊥, L, R, ⊤}` = 2-point × 2-point (as a powerset
/// of two atoms), exercising non-chain label structure.
fn product_lattice() -> Lattice {
    Lattice::powerset(&["L", "R"])
}

fn gen_spec(rng: &mut StdRng, depth: usize, n_labels: u8) -> LabeledSpec {
    let label = rng.gen_range(0..n_labels);
    let choices = if depth == 0 { 4 } else { 7 };
    let spec = match rng.gen_range(0..choices) {
        0 => Spec::Bool,
        1 => Spec::Int,
        2 => Spec::Bit(rng.gen_range(1..=16)),
        3 => Spec::Unit,
        4 | 5 => {
            // Field names drawn from a pool of 12 so that wide (>8 field)
            // records exercise the sorted layout too.
            let n = rng.gen_range(0..=10usize);
            let mut names: Vec<u8> = (0..12).collect();
            // Deterministic shuffle-by-swaps.
            for i in (1..names.len()).rev() {
                let j = rng.gen_range(0..=i);
                names.swap(i, j);
            }
            let fields = names
                .into_iter()
                .take(n)
                .map(|name| (name, gen_spec(rng, depth - 1, n_labels)))
                .collect();
            if rng.gen() {
                Spec::Record(fields)
            } else {
                Spec::Header(fields)
            }
        }
        _ => Spec::Stack(Box::new(gen_spec(rng, depth - 1, n_labels)), rng.gen_range(1..=4)),
    };
    LabeledSpec { spec, label }
}

/// Interns a spec tree bottom-up, exactly as the checker constructs types.
fn build(pool: &mut TyPool, syms: &mut Interner, lat: &Lattice, t: &LabeledSpec) -> SecTy {
    let labels: Vec<Label> = lat.labels().collect();
    let label = labels[t.label as usize % labels.len()];
    let ty = match &t.spec {
        Spec::Bool => TyId::BOOL,
        Spec::Int => TyId::INT,
        Spec::Bit(w) => pool.bit(*w),
        Spec::Unit => TyId::UNIT,
        Spec::Record(fields) | Spec::Header(fields) => {
            let built: Vec<(Symbol, SecTy)> = fields
                .iter()
                .map(|(name, sub)| {
                    (syms.intern(&format!("f{name:02}")), build(pool, syms, lat, sub))
                })
                .collect();
            if matches!(&t.spec, Spec::Record(_)) {
                pool.record(FieldList::new(built))
            } else {
                pool.header(FieldList::new(built))
            }
        }
        Spec::Stack(elem, n) => {
            let elem = build(pool, syms, lat, elem);
            pool.stack(elem, *n)
        }
    };
    SecTy::new(ty, label)
}

fn spec_from_seed(seed: u64, n_labels: u8) -> LabeledSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    gen_spec(&mut rng, 3, n_labels)
}

proptest! {
    /// `ty_eq(a, b) ⟺ intern(a) == intern(b)`: equal trees cons to equal
    /// ids, and (injectivity) distinct trees never collide.
    #[test]
    fn hash_consing_is_sound_and_injective(seed_a in any::<u64>(), seed_b in any::<u64>(), same in any::<bool>()) {
        let lat = product_lattice();
        let n_labels = u8::try_from(lat.len()).unwrap();
        let spec_a = spec_from_seed(seed_a, n_labels);
        let spec_b = if same { spec_a.clone() } else { spec_from_seed(seed_b, n_labels) };

        let mut pool = TyPool::new();
        let mut syms = Interner::new();
        let ta = build(&mut pool, &mut syms, &lat, &spec_a);
        let tb = build(&mut pool, &mut syms, &lat, &spec_b);

        prop_assert_eq!(
            spec_a == spec_b,
            ta == tb,
            "spec equality and pooled-id equality must agree:\n a = {:?}\n b = {:?}",
            spec_a,
            spec_b
        );
        // And `compatible` must at least contain pooled equality.
        if ta == tb {
            prop_assert!(pool.same_shape(ta, tb));
        }
    }

    /// Re-interning the same tree into the same pool allocates nothing.
    #[test]
    fn reinterning_is_free(seed in any::<u64>()) {
        let lat = product_lattice();
        let n_labels = u8::try_from(lat.len()).unwrap();
        let spec = spec_from_seed(seed, n_labels);
        let mut pool = TyPool::new();
        let mut syms = Interner::new();
        let first = build(&mut pool, &mut syms, &lat, &spec);
        let size = pool.len();
        let second = build(&mut pool, &mut syms, &lat, &spec);
        prop_assert_eq!(first, second);
        prop_assert_eq!(pool.len(), size, "second build must not grow the pool");
    }

    /// Interning order does not matter: building b-then-a in a fresh pool
    /// yields the same equality verdict as a-then-b.
    #[test]
    fn interning_order_is_irrelevant(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let lat = product_lattice();
        let n_labels = u8::try_from(lat.len()).unwrap();
        let spec_a = spec_from_seed(seed_a, n_labels);
        let spec_b = spec_from_seed(seed_b, n_labels);

        let (mut pool_ab, mut syms_ab) = (TyPool::new(), Interner::new());
        let a1 = build(&mut pool_ab, &mut syms_ab, &lat, &spec_a);
        let b1 = build(&mut pool_ab, &mut syms_ab, &lat, &spec_b);

        let (mut pool_ba, mut syms_ba) = (TyPool::new(), Interner::new());
        let b2 = build(&mut pool_ba, &mut syms_ba, &lat, &spec_b);
        let a2 = build(&mut pool_ba, &mut syms_ba, &lat, &spec_a);

        prop_assert_eq!(a1 == b1, a2 == b2);
    }

    /// Interning through frozen-then-overlay tiers is equivalent to a
    /// single flat pool: `ty_eq ⟺ id-equal` within each pool, and the
    /// structures agree across tiers (shape-equality via the rendered
    /// structural type, which is injective for pooled types).
    #[test]
    fn two_tier_interning_matches_flat(seed_a in any::<u64>(), seed_b in any::<u64>(), same in any::<bool>()) {
        let lat = product_lattice();
        let n_labels = u8::try_from(lat.len()).unwrap();
        let spec_a = spec_from_seed(seed_a, n_labels);
        let spec_b = if same { spec_a.clone() } else { spec_from_seed(seed_b, n_labels) };

        // Flat pool: both trees in the root tier.
        let (mut flat_pool, mut flat_syms) = (TyPool::new(), Interner::new());
        let fa = build(&mut flat_pool, &mut flat_syms, &lat, &spec_a);
        let fb = build(&mut flat_pool, &mut flat_syms, &lat, &spec_b);

        // Tiered: tree A frozen into the base segment, then both trees
        // interned through an overlay.
        let (mut root_pool, mut root_syms) = (TyPool::new(), Interner::new());
        let frozen_a = build(&mut root_pool, &mut root_syms, &lat, &spec_a);
        let frozen_pool = Arc::new(root_pool.freeze());
        let frozen_syms = Arc::new(root_syms.freeze());
        let mut pool = TyPool::with_base(Arc::clone(&frozen_pool));
        let mut syms = Interner::with_base(frozen_syms);
        let ta = build(&mut pool, &mut syms, &lat, &spec_a);
        let tb = build(&mut pool, &mut syms, &lat, &spec_b);

        // Re-interning the frozen tree resolves to its frozen id and
        // allocates nothing in the overlay.
        prop_assert_eq!(ta, SecTy::new(frozen_a.ty, ta.label));
        prop_assert!(!ta.ty.is_overlay());

        // ty_eq ⟺ id-equal, identically in both pools.
        prop_assert_eq!(spec_a == spec_b, fa == fb, "flat pool");
        prop_assert_eq!(fa == fb, ta == tb, "tiered pool agrees with flat");
        prop_assert_eq!(flat_pool.same_shape(fa, fb), pool.same_shape(ta, tb));

        // Shape-equal across tiers: the rendered structural types match.
        prop_assert_eq!(flat_pool.display(fa.ty, &flat_syms), pool.display(ta.ty, &syms));
        prop_assert_eq!(flat_pool.display(fb.ty, &flat_syms), pool.display(tb.ty, &syms));
    }

    /// The overlay never duplicates frozen structure: re-building a frozen
    /// tree through an overlay leaves the overlay empty.
    #[test]
    fn overlay_reuse_allocates_nothing(seed in any::<u64>()) {
        let lat = product_lattice();
        let n_labels = u8::try_from(lat.len()).unwrap();
        let spec = spec_from_seed(seed, n_labels);

        let (mut root_pool, mut root_syms) = (TyPool::new(), Interner::new());
        let frozen_id = build(&mut root_pool, &mut root_syms, &lat, &spec);
        let mut pool = TyPool::with_base(Arc::new(root_pool.freeze()));
        let mut syms = Interner::with_base(Arc::new(root_syms.freeze()));

        let again = build(&mut pool, &mut syms, &lat, &spec);
        prop_assert_eq!(again.ty, frozen_id.ty);
        prop_assert_eq!(pool.tier_sizes().1, 0, "no overlay type allocations");
        prop_assert_eq!(syms.tier_sizes().1, 0, "no overlay symbol allocations");
        let (hits, calls) = pool.frozen_hit_stats();
        prop_assert_eq!(hits, calls, "every intern call was a frozen hit");
    }
}
