//! The workspace's one 64-bit FNV-1a implementation.
//!
//! Three subsystems hash with FNV-1a and their values are load-bearing:
//! the serve verdict cache keys on the content hash of a request body,
//! the directory scanner uses the same hash as its change decider, and
//! the flow-lineage log keys trace handles by structural expression
//! hashes. Before this module each carried its own copy of the constants;
//! now they all fold through one helper, and the unit tests below pin the
//! exact values so cache keys and golden sidecars can never shift
//! silently.
//!
//! # Examples
//!
//! ```
//! use p4bid_ast::fnv;
//!
//! assert_eq!(fnv::hash(b""), fnv::OFFSET);
//! assert_eq!(fnv::hash(b"ab"), fnv::byte(fnv::byte(fnv::OFFSET, b'a'), b'b'));
//! ```

/// The FNV-1a 64-bit offset basis.
pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0100_0000_01b3;

/// Folds one byte into a running hash.
#[inline]
#[must_use]
pub fn byte(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(PRIME)
}

/// Folds a byte slice into a running hash.
#[inline]
#[must_use]
pub fn bytes(mut h: u64, data: &[u8]) -> u64 {
    for &b in data {
        h = byte(h, b);
    }
    h
}

/// Hashes a byte slice from the offset basis — the one-shot form the
/// verdict cache and the directory scanner use.
#[inline]
#[must_use]
pub fn hash(data: &[u8]) -> u64 {
    bytes(OFFSET, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact values are part of the workspace's compatibility surface:
    /// verdict-cache keys, scanner fingerprints, and lineage trace keys
    /// all derive from them. Vectors cross-checked against the published
    /// FNV-1a test suite.
    #[test]
    fn pinned_hash_values() {
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(hash(b"hello"), 0xa430_d846_80aa_bd0b);
        assert_eq!(hash(b"control C() {}"), 0x0596_44ef_431b_a254);
    }

    #[test]
    fn incremental_folding_matches_one_shot() {
        let data = b"control C(inout bit<8> x) { apply { } }";
        let mut h = OFFSET;
        for &b in data.iter() {
            h = byte(h, b);
        }
        assert_eq!(h, hash(data));
        let (head, tail) = data.split_at(7);
        assert_eq!(bytes(bytes(OFFSET, head), tail), hash(data));
    }

    #[test]
    fn constants_are_the_published_fnv1a_64_parameters() {
        assert_eq!(OFFSET, 14_695_981_039_346_656_037);
        assert_eq!(PRIME, 1_099_511_628_211);
    }
}
