//! Byte-offset source spans and line/column rendering for diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer.
///
/// Spans are attached to every AST node so the typechecker can point
/// diagnostics at the offending expression (e.g. the leaking assignment in
/// Listing 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    #[must_use]
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The empty, unknown span. Used for synthesized nodes (prelude,
    /// desugaring).
    #[must_use]
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Whether this is the dummy span.
    #[must_use]
    pub fn is_dummy(self) -> bool {
        self.start == 0 && self.end == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A value paired with the span it came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The carried value.
    pub node: T,
    /// Where it appeared in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs a value with a span.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }

    /// Maps the carried value, keeping the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned { node: f(self.node), span: self.span }
    }
}

/// 1-based line/column position, derived from a span start and the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Computes the 1-based line/column of a byte offset in `source`.
///
/// Offsets past the end clamp to the final position.
#[must_use]
pub fn line_col(source: &str, offset: u32) -> LineCol {
    let offset = (offset as usize).min(source.len());
    let mut line = 1u32;
    let mut col = 1u32;
    for (i, b) in source.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

/// The 1-based line/column of a span's start, when the span actually
/// falls inside `source`.
///
/// Returns `None` for dummy spans and spans extending past the end of
/// `source` — i.e. diagnostics produced against a *different* buffer, such
/// as the implicit prelude. Every renderer (CLI diagnostics, batch
/// reports, golden sidecars) shares this gate so positions agree.
#[must_use]
pub fn span_line_col(source: &str, span: Span) -> Option<LineCol> {
    if span.is_dummy() || (span.end as usize) > source.len() {
        return None;
    }
    Some(line_col(source, span.start))
}

/// Extracts the full source line containing `offset`, for diagnostic
/// underlining.
#[must_use]
pub fn source_line(source: &str, offset: u32) -> &str {
    let offset = (offset as usize).min(source.len());
    let start = source[..offset].rfind('\n').map_or(0, |i| i + 1);
    let end = source[offset..].find('\n').map_or(source.len(), |i| offset + i);
    &source[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn dummy_span() {
        assert!(Span::dummy().is_dummy());
        assert!(!Span::new(0, 1).is_dummy());
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 1), LineCol { line: 1, col: 2 });
        assert_eq!(line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 7), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_col_clamps() {
        let src = "x";
        assert_eq!(line_col(src, 100), LineCol { line: 1, col: 2 });
    }

    #[test]
    fn source_line_extraction() {
        let src = "first\nsecond\nthird";
        assert_eq!(source_line(src, 0), "first");
        assert_eq!(source_line(src, 8), "second");
        assert_eq!(source_line(src, 17), "third");
    }

    #[test]
    fn spanned_map() {
        let s = Spanned::new(2, Span::new(1, 3)).map(|x| x * 10);
        assert_eq!(s.node, 20);
        assert_eq!(s.span, Span::new(1, 3));
    }
}
