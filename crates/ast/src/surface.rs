//! Surface abstract syntax for the security-annotated Core P4 fragment.
//!
//! This is a direct transcription of Figure 1 of the P4BID paper (plus the
//! handful of conveniences the case studies need: unary operators, a richer
//! binary-operator set, header/struct/typedef declarations, and a `lattice`
//! declaration for custom label orders). Security annotations are written
//! `<T, label>` as in Listings 2–7; an unannotated type defaults to `⊥`.
//!
//! Label annotations are kept as *names* here; the typechecker resolves them
//! against the active [`p4bid_lattice::Lattice`].

use crate::span::{Span, Spanned};
use std::fmt;

/// Parameter / expression directionality (`d ::= in | inout`).
///
/// `in` data can only be read; `inout` can be read and written. Omitted
/// directions on action parameters mark *control-plane* parameters whose
/// arguments are supplied by the controller at table-install time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Read-only.
    In,
    /// Readable and writable (copy-in/copy-out).
    InOut,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::In => write!(f, "in"),
            Direction::InOut => write!(f, "inout"),
        }
    }
}

/// A surface type expression (τ before typedef unfolding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `bool`.
    Bool,
    /// Arbitrary-precision `int`.
    Int,
    /// `bit<n>`, an unsigned bit-vector of width `n` (1 ≤ n ≤ 128).
    Bit(u16),
    /// `void` / unit — function return type only.
    Void,
    /// A named type: a typedef alias, header, or struct name, resolved via
    /// the type-definition context Δ.
    Named(String),
    /// A header stack `T[n]`.
    Stack(Box<AnnType>, u32),
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Bool => write!(f, "bool"),
            TypeExpr::Int => write!(f, "int"),
            TypeExpr::Bit(n) => write!(f, "bit<{n}>"),
            TypeExpr::Void => write!(f, "void"),
            TypeExpr::Named(n) => write!(f, "{n}"),
            TypeExpr::Stack(t, n) => write!(f, "{}[{n}]", t),
        }
    }
}

/// A type expression together with an optional security-label annotation:
/// the surface form of the security type `⟨τ, χ⟩`.
///
/// `<bit<8>, high> ttl;` parses to `AnnType { ty: Bit(8), label: Some("high") }`.
/// Unannotated types (`bit<8> ttl;`) default to the lattice bottom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnType {
    /// The underlying Core P4 type.
    pub ty: TypeExpr,
    /// Optional label name, resolved against the lattice by the checker.
    pub label: Option<Spanned<String>>,
    /// Source location of the whole annotation.
    pub span: Span,
}

impl AnnType {
    /// An unannotated (⊥-labeled) type.
    #[must_use]
    pub fn plain(ty: TypeExpr, span: Span) -> Self {
        AnnType { ty, label: None, span }
    }
}

impl fmt::Display for AnnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => write!(f, "<{}, {}>", self.ty, l.node),
            None => write!(f, "{}", self.ty),
        }
    }
}

/// Binary operators (`⊕`). The paper leaves the operator set to a typing
/// oracle `T`; we provide the operators the case studies and the P4 core
/// library use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (wrapping on `bit<n>`).
    Add,
    /// `-` (wrapping on `bit<n>`).
    Sub,
    /// `*` (wrapping on `bit<n>`).
    Mul,
    /// `&` bitwise and.
    BitAnd,
    /// `|` bitwise or.
    BitOr,
    /// `^` bitwise xor.
    BitXor,
    /// `<<` left shift.
    Shl,
    /// `>>` logical right shift.
    Shr,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (both operands evaluated; Core P4 calls are effectful so we keep
    /// evaluation total and strict).
    And,
    /// `||`.
    Or,
}

impl BinOp {
    /// Surface token for this operator.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Whether the operator produces a `bool` regardless of operand type.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Whether the operator is the boolean connective `&&`/`||`.
    #[must_use]
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `!` boolean negation.
    Not,
    /// `-` arithmetic negation (wrapping on `bit<n>`).
    Neg,
    /// `~` bitwise complement.
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Not => write!(f, "!"),
            UnOp::Neg => write!(f, "-"),
            UnOp::BitNot => write!(f, "~"),
        }
    }
}

/// Expression forms (Figure 1a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Boolean literal `b`.
    Bool(bool),
    /// Integer literal `n_w`: value plus optional width (`8w255` has
    /// width 8; a bare `255` is an arbitrary-precision `int`).
    Int {
        /// The literal value (bit patterns are masked to the width).
        value: u128,
        /// Literal width, if given with `<w>w<value>` syntax.
        width: Option<u16>,
    },
    /// Variable `x`.
    Var(String),
    /// Array/stack indexing `e1[e2]`.
    Index(Box<Expr>, Box<Expr>),
    /// Binary operation `e1 ⊕ e2`.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Record literal `{ f1 = e1, …, fk = ek }`.
    Record(Vec<(Spanned<String>, Expr)>),
    /// Field projection `e.f`.
    Field(Box<Expr>, Spanned<String>),
    /// Function / action call `e(args…)`. A table application `t.apply()`
    /// desugars to `Call(Var(t), [])`.
    Call(Box<Expr>, Vec<Expr>),
}

/// A spanned expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// The expression form.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Builds an expression node.
    #[must_use]
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Convenience constructor for a variable reference.
    #[must_use]
    pub fn var(name: impl Into<String>, span: Span) -> Self {
        Expr::new(ExprKind::Var(name.into()), span)
    }

    /// Whether the expression is syntactically a valid l-value
    /// (Appendix F: `lval ::= x | lval.f | lval[n]`, where the index may be
    /// any expression at evaluation time).
    #[must_use]
    pub fn is_lvalue_shaped(&self) -> bool {
        match &self.kind {
            ExprKind::Var(_) => true,
            ExprKind::Field(e, _) | ExprKind::Index(e, _) => e.is_lvalue_shaped(),
            _ => false,
        }
    }
}

/// A local variable declaration `⟨τ, χ⟩ x := e` / `⟨τ, χ⟩ x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Declared (possibly annotated) type.
    pub ty: AnnType,
    /// Variable name.
    pub name: Spanned<String>,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source location of the whole declaration.
    pub span: Span,
}

/// Statement forms (Figure 1b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// Call statement `e1(e2…)` — covers direct action/function calls and
    /// table applications.
    Call(Expr),
    /// Assignment `lval := e`.
    Assign(Expr, Expr),
    /// Conditional.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// Block `{ stmt… }`.
    Block(Vec<Stmt>),
    /// `exit` — abort the control block.
    Exit,
    /// `return e` / `return`.
    Return(Option<Expr>),
    /// Nested variable declaration.
    VarDecl(VarDecl),
}

/// A spanned statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The statement form.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Builds a statement node.
    #[must_use]
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// A function/action parameter `d x : ⟨τ, χ⟩`.
///
/// `direction: None` on an action parameter marks a *control-plane*
/// parameter (the paper's "directionless" optional arguments, supplied by
/// the controller); it behaves as `in` inside the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// `in`, `inout`, or none (control-plane).
    pub direction: Option<Direction>,
    /// Parameter name.
    pub name: Spanned<String>,
    /// Declared type.
    pub ty: AnnType,
}

/// An action declaration — a function with no return value whose
/// directionless parameters may be bound by the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDecl {
    /// Action name.
    pub name: Spanned<String>,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A function declaration `function ⟨τ_ret, χ_ret⟩ x (d y : ⟨τ, χ⟩) { stmt }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: Spanned<String>,
    /// Return type (`void` for unit).
    pub ret: AnnType,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A key entry in a table declaration: `exp : match_kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyEntry {
    /// Key expression, usually a header field.
    pub expr: Expr,
    /// Match kind name (`exact`, `lpm`, `ternary`).
    pub match_kind: Spanned<String>,
}

/// An action reference inside a table: `act(bound_args…)`.
///
/// Bound arguments fill the action's *directional* parameter prefix at
/// table-declaration time (as in `forwarding(failures)` in Listing 3); the
/// remaining directionless parameters are supplied by the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionRef {
    /// Action name.
    pub name: Spanned<String>,
    /// Data-plane arguments bound at declaration.
    pub args: Vec<Expr>,
    /// Source location.
    pub span: Span,
}

/// A table declaration `table x { key act }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDecl {
    /// Table name.
    pub name: Spanned<String>,
    /// Lookup keys.
    pub keys: Vec<KeyEntry>,
    /// Candidate actions.
    pub actions: Vec<ActionRef>,
    /// Optional default action (must be one of `actions`), run on a lookup
    /// miss. Defaults to `NoAction`.
    pub default_action: Option<Spanned<String>>,
    /// Source location.
    pub span: Span,
}

/// Declarations allowed inside a control body (`decl`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlDecl {
    /// Local variable.
    Var(VarDecl),
    /// Action.
    Action(ActionDecl),
    /// Function.
    Function(FunctionDecl),
    /// Match-action table.
    Table(TableDecl),
}

impl CtrlDecl {
    /// The declared name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            CtrlDecl::Var(v) => &v.name.node,
            CtrlDecl::Action(a) => &a.name.node,
            CtrlDecl::Function(f) => &f.name.node,
            CtrlDecl::Table(t) => &t.name.node,
        }
    }

    /// The source span of the declaration.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            CtrlDecl::Var(v) => v.span,
            CtrlDecl::Action(a) => a.span,
            CtrlDecl::Function(f) => f.span,
            CtrlDecl::Table(t) => t.span,
        }
    }
}

/// A control block: declarations followed by the `apply` block
/// (`ctrl_body ::= decl stmt`).
///
/// The optional `pc` annotation (`@pc(A) control Alice(...) { … }`) sets
/// the ambient security context the block is checked under, as in the
/// isolation case study (§5.4): `Γ, Δ ⊢_A update_by_alice() ⊣ Γ'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlDecl {
    /// Control name.
    pub name: Spanned<String>,
    /// Parameters (headers, metadata, …).
    pub params: Vec<Param>,
    /// Body declarations.
    pub decls: Vec<CtrlDecl>,
    /// The `apply { … }` statements.
    pub apply: Vec<Stmt>,
    /// Optional `@pc(label)` annotation.
    pub pc: Option<Spanned<String>>,
    /// Source location.
    pub span: Span,
}

/// Top-level type declarations (`typ_decl`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDecl {
    /// `typedef τ X;`
    Typedef {
        /// Aliased type.
        ty: AnnType,
        /// New name.
        name: Spanned<String>,
    },
    /// `header X { ⟨τ, χ⟩ f; … }`
    Header {
        /// Header type name.
        name: Spanned<String>,
        /// Field declarations.
        fields: Vec<(Spanned<String>, AnnType)>,
    },
    /// `struct X { ⟨τ, χ⟩ f; … }` — a record type.
    Struct {
        /// Struct type name.
        name: Spanned<String>,
        /// Field declarations.
        fields: Vec<(Spanned<String>, AnnType)>,
    },
    /// `match_kind { f, … }`
    MatchKind {
        /// Declared match kinds (e.g. `exact`, `lpm`).
        kinds: Vec<Spanned<String>>,
    },
}

impl TypeDecl {
    /// The declared name, if the declaration introduces one.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        match self {
            TypeDecl::Typedef { name, .. }
            | TypeDecl::Header { name, .. }
            | TypeDecl::Struct { name, .. } => Some(&name.node),
            TypeDecl::MatchKind { .. } => None,
        }
    }
}

/// A custom lattice declaration:
/// `lattice { bot < A; bot < B; A < top; B < top; }`.
///
/// Element names are collected from the order pairs. When absent the
/// program uses the active lattice supplied by the embedding (by default
/// the two-point `{low ⊑ high}` lattice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatticeDecl {
    /// Order constraints `lo < hi`.
    pub order: Vec<(Spanned<String>, Spanned<String>)>,
    /// Source location.
    pub span: Span,
}

impl LatticeDecl {
    /// All element names mentioned, deduplicated in first-appearance order.
    #[must_use]
    pub fn element_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for (lo, hi) in &self.order {
            for n in [&lo.node, &hi.node] {
                if !names.contains(n) {
                    names.push(n.clone());
                }
            }
        }
        names
    }
}

/// Top-level items, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A type declaration.
    Type(TypeDecl),
    /// A lattice declaration.
    Lattice(LatticeDecl),
    /// A global function (visible in every control).
    Function(FunctionDecl),
    /// A global action (visible in every control).
    Action(ActionDecl),
    /// A control block.
    Control(ControlDecl),
}

/// A whole program (`prg ::= typ_decl ctrl_body`, generalized to several
/// top-level items and at least one control block).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// All items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Iterates over the control blocks in source order.
    pub fn controls(&self) -> impl Iterator<Item = &ControlDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Control(c) => Some(c),
            _ => None,
        })
    }

    /// The lattice declaration, if any. Multiple declarations are a parse
    /// error; the first wins defensively.
    #[must_use]
    pub fn lattice_decl(&self) -> Option<&LatticeDecl> {
        self.items.iter().find_map(|i| match i {
            Item::Lattice(l) => Some(l),
            _ => None,
        })
    }

    /// Iterates over the type declarations in source order.
    pub fn type_decls(&self) -> impl Iterator<Item = &TypeDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Type(t) => Some(t),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::dummy()
    }

    #[test]
    fn lvalue_shapes() {
        let x = Expr::var("x", sp());
        assert!(x.is_lvalue_shaped());
        let xf =
            Expr::new(ExprKind::Field(Box::new(x.clone()), Spanned::new("f".into(), sp())), sp());
        assert!(xf.is_lvalue_shaped());
        let idx = Expr::new(
            ExprKind::Index(
                Box::new(xf),
                Box::new(Expr::new(ExprKind::Int { value: 0, width: None }, sp())),
            ),
            sp(),
        );
        assert!(idx.is_lvalue_shaped());
        let call = Expr::new(ExprKind::Call(Box::new(x), vec![]), sp());
        assert!(!call.is_lvalue_shaped());
        let lit = Expr::new(ExprKind::Bool(true), sp());
        assert!(!lit.is_lvalue_shaped());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
        assert_eq!(BinOp::Shl.symbol(), "<<");
    }

    #[test]
    fn lattice_decl_names() {
        let s = |n: &str| Spanned::new(n.to_string(), sp());
        let decl = LatticeDecl {
            order: vec![(s("bot"), s("A")), (s("bot"), s("B")), (s("A"), s("top"))],
            span: sp(),
        };
        assert_eq!(decl.element_names(), vec!["bot", "A", "B", "top"]);
    }

    #[test]
    fn program_accessors() {
        let mut p = Program::default();
        assert!(p.lattice_decl().is_none());
        assert_eq!(p.controls().count(), 0);
        p.items.push(Item::Lattice(LatticeDecl { order: vec![], span: sp() }));
        assert!(p.lattice_decl().is_some());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TypeExpr::Bit(32).to_string(), "bit<32>");
        assert_eq!(Direction::InOut.to_string(), "inout");
        assert_eq!(UnOp::BitNot.to_string(), "~");
        let ann = AnnType {
            ty: TypeExpr::Bit(8),
            label: Some(Spanned::new("high".into(), sp())),
            span: sp(),
        };
        assert_eq!(ann.to_string(), "<bit<8>, high>");
    }
}
