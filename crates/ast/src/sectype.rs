//! Resolved security types `⟨τ, χ⟩` (Figure 4 of the paper).
//!
//! These are the types produced by the typechecker after typedef unfolding
//! (`Δ ⊢ τ ⇝ τ'`) and label resolution: every label annotation has become a
//! concrete [`Label`] in the active lattice, and every named type has been
//! replaced by its structural definition.
//!
//! Following Figure 4, non-base structure (records, headers, stacks, tables,
//! functions) carries security labels *inside* (on fields / elements /
//! effect positions) and the outermost label of such types is `⊥`; base
//! types (`bool`, `int`, `bit<n>`) carry their own label.

use crate::surface::Direction;
use p4bid_lattice::{Label, Lattice};
use std::fmt;
use std::rc::Rc;

/// A function or action type
/// `⟨d ⟨τᵢ, χᵢ⟩ ; ⟨τ_cᵢ, χ_cᵢ⟩ --pc_fn--> ⟨τ_ret, χ_ret⟩, ⊥⟩`.
///
/// `pc_fn` is the lower bound on the labels of everything the body writes:
/// the function may only be invoked in contexts `pc ⊑ pc_fn` (T-Call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnTy {
    /// Parameters in declaration order.
    pub params: Vec<FnParam>,
    /// Write-effect bound inferred from the body (T-FuncDecl).
    pub pc_fn: Label,
    /// Return security type (`⟨unit, ⊥⟩` for actions).
    pub ret: SecTy,
    /// Whether this is an action (unit return, may have control-plane
    /// parameters, eligible to appear in tables).
    pub is_action: bool,
}

impl FnTy {
    /// The directional (data-plane) parameter prefix — the arguments a
    /// caller or a table declaration must supply.
    pub fn data_params(&self) -> impl Iterator<Item = &FnParam> {
        self.params.iter().filter(|p| !p.control_plane)
    }

    /// The directionless (control-plane) parameters, supplied by the
    /// controller at table-install time.
    pub fn control_params(&self) -> impl Iterator<Item = &FnParam> {
        self.params.iter().filter(|p| p.control_plane)
    }
}

/// One resolved function/action parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnParam {
    /// Parameter name (kept for diagnostics and interpreter binding).
    pub name: String,
    /// Effective direction; control-plane parameters behave as `in`.
    pub direction: Direction,
    /// Resolved security type.
    pub ty: SecTy,
    /// Whether the argument comes from the control plane.
    pub control_plane: bool,
}

/// The resolved Core P4 type structure `τ` (Figure 4, without the
/// outermost label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// `bool`.
    Bool,
    /// Arbitrary-precision integer.
    Int,
    /// Unsigned bit-vector of the given width.
    Bit(u16),
    /// Unit (function returns).
    Unit,
    /// Record / struct `{ f : ⟨τ, χ⟩ }`.
    Record(Rc<Vec<(String, SecTy)>>),
    /// Header `header { f : ⟨τ, χ⟩ }` (always valid in this fragment).
    Header(Rc<Vec<(String, SecTy)>>),
    /// Header stack `⟨τ, χ⟩[n]`.
    Stack(Rc<SecTy>, u32),
    /// A match-kind constant (`exact`, `lpm`, `ternary`).
    MatchKind,
    /// A table closure; the label is `pc_tbl` (T-TblDecl).
    Table(Label),
    /// A function or action closure.
    Function(Rc<FnTy>),
}

impl Ty {
    /// Whether the type is a *base* type `ρ` in the sense of Figure 3/4
    /// (allowed as header/record field, carries its own label).
    #[must_use]
    pub fn is_base_scalar(&self) -> bool {
        matches!(self, Ty::Bool | Ty::Int | Ty::Bit(_))
    }

    /// The record/header field list, if any.
    #[must_use]
    pub fn fields(&self) -> Option<&[(String, SecTy)]> {
        match self {
            Ty::Record(fs) | Ty::Header(fs) => Some(fs),
            _ => None,
        }
    }

    /// Looks up a field's security type.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&SecTy> {
        self.fields()?.iter().find(|(f, _)| f == name).map(|(_, t)| t)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Bool => write!(f, "bool"),
            Ty::Int => write!(f, "int"),
            Ty::Bit(n) => write!(f, "bit<{n}>"),
            Ty::Unit => write!(f, "unit"),
            Ty::Record(fs) => {
                write!(f, "struct {{ ")?;
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t:?}")?;
                }
                write!(f, " }}")
            }
            Ty::Header(fs) => {
                write!(f, "header {{ ")?;
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t:?}")?;
                }
                write!(f, " }}")
            }
            Ty::Stack(t, n) => write!(f, "{:?}[{n}]", t),
            Ty::MatchKind => write!(f, "match_kind"),
            Ty::Table(_) => write!(f, "table"),
            Ty::Function(ft) => {
                write!(f, "{}(…)", if ft.is_action { "action" } else { "function" })
            }
        }
    }
}

/// A resolved security type `⟨τ, χ⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecTy {
    /// The structural type.
    pub ty: Ty,
    /// The (outermost) security label.
    pub label: Label,
}

impl SecTy {
    /// Pairs a type with a label.
    #[must_use]
    pub fn new(ty: Ty, label: Label) -> Self {
        SecTy { ty, label }
    }

    /// A `⊥`-labeled type.
    #[must_use]
    pub fn bottom(ty: Ty, lat: &Lattice) -> Self {
        SecTy { ty, label: lat.bottom() }
    }

    /// `⟨unit, ⊥⟩`.
    #[must_use]
    pub fn unit(lat: &Lattice) -> Self {
        SecTy::bottom(Ty::Unit, lat)
    }

    /// The same type with the label raised to `self.label ⊔ other`.
    /// (T-SubType-In, applied algorithmically at `in`-positions.)
    #[must_use]
    pub fn raised(&self, lat: &Lattice, other: Label) -> SecTy {
        SecTy { ty: self.ty.clone(), label: lat.join(self.label, other) }
    }

    /// Renders the type with lattice-resolved label names, e.g.
    /// `⟨bit<8>, high⟩`.
    #[must_use]
    pub fn display<'a>(&'a self, lat: &'a Lattice) -> SecTyDisplay<'a> {
        SecTyDisplay { ty: self, lat }
    }

    /// Whether two security types describe the same data layout and labels
    /// up to implicit `int → bit<n>` literal coercion (P4's
    /// arbitrary-precision literals). Outer labels are *not* compared; use
    /// this for the `τ`-equality side conditions of T-Assign / T-Call.
    #[must_use]
    pub fn same_shape(&self, other: &SecTy) -> bool {
        ty_compatible(&self.ty, &other.ty)
    }
}

/// Structural compatibility for the τ-equality side conditions, admitting
/// the `int` literal to `bit<n>` coercion in either direction.
#[must_use]
pub fn ty_compatible(a: &Ty, b: &Ty) -> bool {
    match (a, b) {
        (Ty::Int, Ty::Bit(_)) | (Ty::Bit(_), Ty::Int) => true,
        (Ty::Record(x), Ty::Record(y)) | (Ty::Header(x), Ty::Header(y)) => {
            x.len() == y.len()
                && x.iter().zip(y.iter()).all(|((nx, tx), (ny, ty))| {
                    nx == ny && tx.label == ty.label && ty_compatible(&tx.ty, &ty.ty)
                })
        }
        (Ty::Stack(x, n), Ty::Stack(y, m)) => {
            n == m && x.label == y.label && ty_compatible(&x.ty, &y.ty)
        }
        _ => a == b,
    }
}

/// Helper for rendering a [`SecTy`] with human-readable label names.
#[derive(Debug)]
pub struct SecTyDisplay<'a> {
    ty: &'a SecTy,
    lat: &'a Lattice,
}

impl fmt::Display for SecTyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.ty.ty, self.lat.name(self.ty.label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Lattice {
        Lattice::two_point()
    }

    #[test]
    fn base_scalars() {
        assert!(Ty::Bool.is_base_scalar());
        assert!(Ty::Bit(8).is_base_scalar());
        assert!(!Ty::Unit.is_base_scalar());
        assert!(!Ty::MatchKind.is_base_scalar());
    }

    #[test]
    fn field_lookup() {
        let l = lat();
        let fields = Rc::new(vec![
            ("ttl".to_string(), SecTy::bottom(Ty::Bit(8), &l)),
            ("dst".to_string(), SecTy::new(Ty::Bit(32), l.top())),
        ]);
        let hdr = Ty::Header(fields);
        assert_eq!(hdr.field("ttl").unwrap().ty, Ty::Bit(8));
        assert_eq!(hdr.field("dst").unwrap().label, l.top());
        assert!(hdr.field("nope").is_none());
        assert!(Ty::Bool.field("x").is_none());
    }

    #[test]
    fn raising_labels() {
        let l = lat();
        let t = SecTy::bottom(Ty::Bit(8), &l);
        let raised = t.raised(&l, l.top());
        assert_eq!(raised.label, l.top());
        assert_eq!(raised.ty, Ty::Bit(8));
        // Raising by bottom is the identity.
        assert_eq!(t.raised(&l, l.bottom()), t);
    }

    #[test]
    fn int_bit_compatibility() {
        let l = lat();
        let int = SecTy::bottom(Ty::Int, &l);
        let bit = SecTy::bottom(Ty::Bit(32), &l);
        assert!(int.same_shape(&bit));
        assert!(bit.same_shape(&int));
        assert!(!SecTy::bottom(Ty::Bool, &l).same_shape(&bit));
    }

    #[test]
    fn nested_compatibility_checks_labels() {
        let l = lat();
        let mk = |label: Label| {
            SecTy::bottom(
                Ty::Record(Rc::new(vec![("f".into(), SecTy::new(Ty::Bit(8), label))])),
                &l,
            )
        };
        assert!(mk(l.bottom()).same_shape(&mk(l.bottom())));
        // Field labels are part of the type (Figure 4): mismatch rejected.
        assert!(!mk(l.bottom()).same_shape(&mk(l.top())));
    }

    #[test]
    fn stack_compatibility() {
        let l = lat();
        let s8 = Ty::Stack(Rc::new(SecTy::bottom(Ty::Bit(8), &l)), 4);
        let s8b = Ty::Stack(Rc::new(SecTy::bottom(Ty::Bit(8), &l)), 4);
        let s5 = Ty::Stack(Rc::new(SecTy::bottom(Ty::Bit(8), &l)), 5);
        assert!(ty_compatible(&s8, &s8b));
        assert!(!ty_compatible(&s8, &s5));
    }

    #[test]
    fn display_with_labels() {
        let l = lat();
        let t = SecTy::new(Ty::Bit(8), l.top());
        assert_eq!(t.display(&l).to_string(), "<bit<8>, high>");
    }

    #[test]
    fn fn_param_partition() {
        let l = lat();
        let ft = FnTy {
            params: vec![
                FnParam {
                    name: "x".into(),
                    direction: Direction::In,
                    ty: SecTy::bottom(Ty::Bit(8), &l),
                    control_plane: false,
                },
                FnParam {
                    name: "c".into(),
                    direction: Direction::In,
                    ty: SecTy::bottom(Ty::Bit(8), &l),
                    control_plane: true,
                },
            ],
            pc_fn: l.top(),
            ret: SecTy::unit(&l),
            is_action: true,
        };
        assert_eq!(ft.data_params().count(), 1);
        assert_eq!(ft.control_params().count(), 1);
        assert_eq!(ft.data_params().next().unwrap().name, "x");
        assert_eq!(ft.control_params().next().unwrap().name, "c");
    }
}
