//! Resolved security types `⟨τ, χ⟩` (Figure 4 of the paper), hash-consed.
//!
//! These are the types produced by the typechecker after typedef unfolding
//! (`Δ ⊢ τ ⇝ τ'`) and label resolution: every label annotation has become a
//! concrete [`Label`] in the active lattice, and every named type has been
//! replaced by its structural definition.
//!
//! Following Figure 4, non-base structure (records, headers, stacks, tables,
//! functions) carries security labels *inside* (on fields / elements /
//! effect positions) and the outermost label of such types is `⊥`; base
//! types (`bool`, `int`, `bit<n>`) carry their own label.
//!
//! Structural nodes ([`Ty`]) live in a hash-consing
//! [`TyPool`](crate::pool::TyPool) and are referred to by copyable [`TyId`] handles; a
//! [`SecTy`] is then just `(TyId, Label)` — a 8-byte `Copy` value — so the
//! typechecker's hot path moves security types around for free and
//! structural equality of pooled types is an id comparison instead of a
//! deep recursive walk. Record and header fields are keyed by interned
//! [`Symbol`]s; wide field lists additionally carry a sorted-by-symbol
//! layout so lookup is a binary search instead of a linear scan.
//!
//! Compound nodes are `Arc`-backed so a pool can be *frozen* into an
//! immutable `Send + Sync` segment ([`FrozenPool`](crate::pool::FrozenPool))
//! shared across worker threads; ids carry a *tier bit*
//! ([`TyId::is_overlay`]) distinguishing frozen-segment ids from per-worker
//! overlay ids while keeping [`TyId::index`] globally dense.

use crate::intern::{Interner, Symbol};
use crate::surface::Direction;
use p4bid_lattice::{Label, Lattice};
use std::sync::Arc;

/// A handle to a structural type node inside a [`TyPool`](crate::pool::TyPool).
///
/// Ids are dense indices, only meaningful relative to the pool that produced
/// them. The pool hash-conses nodes, so within one pool two ids are equal
/// **iff** the types they denote are structurally equal — the O(1) equality
/// the checker's hot path relies on.
///
/// Bit 31 is the **tier bit**: clear for ids allocated in the root/frozen
/// tier, set for ids allocated in an overlay above a frozen base segment.
/// [`index`](TyId::index) masks the bit out and overlay indices continue
/// where the frozen segment ends, so indices stay globally dense and
/// `Vec`-backed side tables keep working unchanged across tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TyId(pub(crate) u32);

/// The tier bit shared by [`TyId`] and [`Symbol`] raw encodings: set on
/// handles allocated in a per-worker overlay, clear on handles from the
/// root/frozen tier.
pub const TIER_BIT: u32 = 1 << 31;

impl TyId {
    /// `bool` (pre-interned by every pool).
    pub const BOOL: TyId = TyId(0);
    /// Arbitrary-precision `int` (pre-interned by every pool).
    pub const INT: TyId = TyId(1);
    /// `unit` (pre-interned by every pool).
    pub const UNIT: TyId = TyId(2);
    /// `match_kind` (pre-interned by every pool).
    pub const MATCH_KIND: TyId = TyId(3);

    /// The dense index of this id across both tiers of its pool (overlay
    /// indices continue after the frozen segment).
    #[must_use]
    pub fn index(self) -> usize {
        (self.0 & !TIER_BIT) as usize
    }

    /// Whether this id was allocated in a per-worker overlay (tier bit
    /// set) rather than in the root/frozen tier.
    #[must_use]
    pub fn is_overlay(self) -> bool {
        self.0 & TIER_BIT != 0
    }
}

/// A resolved security type `⟨τ, χ⟩`: a pooled structural type plus the
/// outermost security label. `Copy` — 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecTy {
    /// The structural type (a handle into the active [`TyPool`](crate::pool::TyPool)).
    pub ty: TyId,
    /// The (outermost) security label.
    pub label: Label,
}

impl SecTy {
    /// Pairs a pooled type with a label.
    #[must_use]
    pub fn new(ty: TyId, label: Label) -> Self {
        SecTy { ty, label }
    }

    /// A `⊥`-labeled type.
    #[must_use]
    pub fn bottom(ty: TyId, lat: &Lattice) -> Self {
        SecTy { ty, label: lat.bottom() }
    }

    /// `⟨unit, ⊥⟩`.
    #[must_use]
    pub fn unit(lat: &Lattice) -> Self {
        SecTy { ty: TyId::UNIT, label: lat.bottom() }
    }

    /// The same type with the label raised to `self.label ⊔ other`.
    /// (T-SubType-In, applied algorithmically at `in`-positions.)
    #[must_use]
    pub fn raised(&self, lat: &Lattice, other: Label) -> SecTy {
        SecTy { ty: self.ty, label: lat.join(self.label, other) }
    }
}

/// Field count above which a [`FieldList`] builds the sorted-by-symbol
/// lookup layout (below it, a linear scan over `Copy` pairs wins).
pub const SORTED_FIELDS_THRESHOLD: usize = 8;

/// The fields of a record or header, keyed by interned symbols and kept in
/// declaration order.
///
/// Lists wider than [`SORTED_FIELDS_THRESHOLD`] carry an extra
/// sorted-by-symbol index built at construction time, so
/// [`get`](FieldList::get) on wide headers is a binary search instead of a
/// linear scan.
#[derive(Debug, Clone, Eq)]
pub struct FieldList {
    /// `(name, type)` pairs in declaration order.
    fields: Vec<(Symbol, SecTy)>,
    /// Indices into `fields`, sorted by symbol; empty for narrow lists.
    sorted: Vec<u32>,
}

impl FieldList {
    /// Builds a field list, constructing the sorted layout when the list is
    /// wider than [`SORTED_FIELDS_THRESHOLD`].
    #[must_use]
    pub fn new(fields: Vec<(Symbol, SecTy)>) -> Self {
        let sorted = if fields.len() > SORTED_FIELDS_THRESHOLD {
            let mut ix: Vec<u32> = (0..fields.len() as u32).collect();
            ix.sort_by_key(|&i| fields[i as usize].0);
            ix
        } else {
            Vec::new()
        };
        FieldList { fields, sorted }
    }

    /// Looks a field up by symbol: binary search on wide lists, linear scan
    /// of `Copy` pairs on narrow ones.
    #[must_use]
    pub fn get(&self, name: Symbol) -> Option<SecTy> {
        if self.sorted.is_empty() {
            self.fields.iter().find(|(f, _)| *f == name).map(|(_, t)| *t)
        } else {
            self.sorted
                .binary_search_by_key(&name, |&i| self.fields[i as usize].0)
                .ok()
                .map(|pos| self.fields[self.sorted[pos] as usize].1)
        }
    }

    /// Whether the sorted lookup layout was built (wide lists only).
    #[must_use]
    pub fn has_sorted_layout(&self) -> bool {
        !self.sorted.is_empty()
    }

    /// The fields in declaration order.
    #[must_use]
    pub fn as_slice(&self) -> &[(Symbol, SecTy)] {
        &self.fields
    }

    /// Iterates the fields in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &(Symbol, SecTy)> {
        self.fields.iter()
    }

    /// Number of fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether there are no fields.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

// `sorted` is a pure function of `fields`; equality and hashing consider
// the declaration-order fields only (consistent by construction).
impl PartialEq for FieldList {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl std::hash::Hash for FieldList {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.fields.hash(state);
    }
}

impl<'a> IntoIterator for &'a FieldList {
    type Item = &'a (Symbol, SecTy);
    type IntoIter = std::slice::Iter<'a, (Symbol, SecTy)>;
    fn into_iter(self) -> Self::IntoIter {
        self.fields.iter()
    }
}

/// A function or action type
/// `⟨d ⟨τᵢ, χᵢ⟩ ; ⟨τ_cᵢ, χ_cᵢ⟩ --pc_fn--> ⟨τ_ret, χ_ret⟩, ⊥⟩`.
///
/// `pc_fn` is the lower bound on the labels of everything the body writes:
/// the function may only be invoked in contexts `pc ⊑ pc_fn` (T-Call).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FnTy {
    /// Parameters in declaration order.
    pub params: Vec<FnParam>,
    /// Write-effect bound inferred from the body (T-FuncDecl).
    pub pc_fn: Label,
    /// Return security type (`⟨unit, ⊥⟩` for actions).
    pub ret: SecTy,
    /// Whether this is an action (unit return, may have control-plane
    /// parameters, eligible to appear in tables).
    pub is_action: bool,
}

impl FnTy {
    /// The directional (data-plane) parameter prefix — the arguments a
    /// caller or a table declaration must supply.
    pub fn data_params(&self) -> impl Iterator<Item = &FnParam> {
        self.params.iter().filter(|p| !p.control_plane)
    }

    /// The directionless (control-plane) parameters, supplied by the
    /// controller at table-install time.
    pub fn control_params(&self) -> impl Iterator<Item = &FnParam> {
        self.params.iter().filter(|p| p.control_plane)
    }
}

/// One resolved function/action parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FnParam {
    /// Interned parameter name (resolved at diagnostics boundaries; bound
    /// directly by symbol in the interpreter).
    pub name: Symbol,
    /// Effective direction; control-plane parameters behave as `in`.
    pub direction: Direction,
    /// Resolved security type.
    pub ty: SecTy,
    /// Whether the argument comes from the control plane.
    pub control_plane: bool,
}

/// The resolved Core P4 type structure `τ` (Figure 4, without the
/// outermost label).
///
/// Recursive positions hold `Copy` [`SecTy`] children (pooled ids), so a
/// `Ty` node is cheap to clone and cheap to hash — the cost the hash-consing
/// pool pays exactly once per distinct type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `bool`.
    Bool,
    /// Arbitrary-precision integer.
    Int,
    /// Unsigned bit-vector of the given width.
    Bit(u16),
    /// Unit (function returns).
    Unit,
    /// Record / struct `{ f : ⟨τ, χ⟩ }`.
    Record(Arc<FieldList>),
    /// Header `header { f : ⟨τ, χ⟩ }` (always valid in this fragment).
    Header(Arc<FieldList>),
    /// Header stack `⟨τ, χ⟩[n]`.
    Stack(SecTy, u32),
    /// A match-kind constant (`exact`, `lpm`, `ternary`).
    MatchKind,
    /// A table closure; the label is `pc_tbl` (T-TblDecl).
    Table(Label),
    /// A function or action closure.
    Function(Arc<FnTy>),
}

impl Ty {
    /// Whether the type is a *base* type `ρ` in the sense of Figure 3/4
    /// (allowed as header/record field, carries its own label).
    #[must_use]
    pub fn is_base_scalar(&self) -> bool {
        matches!(self, Ty::Bool | Ty::Int | Ty::Bit(_))
    }

    /// The record/header field list, if any.
    #[must_use]
    pub fn fields(&self) -> Option<&FieldList> {
        match self {
            Ty::Record(fs) | Ty::Header(fs) => Some(fs),
            _ => None,
        }
    }

    /// Looks up a field's security type by interned name.
    #[must_use]
    pub fn field(&self, name: Symbol) -> Option<SecTy> {
        self.fields()?.get(name)
    }
}

/// Renders a [`SecTy`] as `<τ, χ-name>` with lattice-resolved label names
/// (diagnostics boundary).
#[must_use]
pub fn display_secty(
    pool: &crate::pool::TyPool,
    syms: &Interner,
    lat: &Lattice,
    t: SecTy,
) -> String {
    format!("<{}, {}>", pool.display(t.ty, syms), lat.name(t.label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::TyPool;

    fn lat() -> Lattice {
        Lattice::two_point()
    }

    #[test]
    fn base_scalars() {
        assert!(Ty::Bool.is_base_scalar());
        assert!(Ty::Bit(8).is_base_scalar());
        assert!(!Ty::Unit.is_base_scalar());
        assert!(!Ty::MatchKind.is_base_scalar());
    }

    #[test]
    fn field_lookup() {
        let l = lat();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let ttl = syms.intern("ttl");
        let dst = syms.intern("dst");
        let nope = syms.intern("nope");
        let bit8 = pool.bit(8);
        let bit32 = pool.bit(32);
        let hdr = pool.header(FieldList::new(vec![
            (ttl, SecTy::bottom(bit8, &l)),
            (dst, SecTy::new(bit32, l.top())),
        ]));
        assert_eq!(pool.field(hdr, ttl).unwrap().ty, bit8);
        assert_eq!(pool.field(hdr, dst).unwrap().label, l.top());
        assert!(pool.field(hdr, nope).is_none());
        assert!(pool.field(TyId::BOOL, ttl).is_none());
    }

    #[test]
    fn wide_field_lists_use_binary_search() {
        let l = lat();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let bit8 = pool.bit(8);
        // Intern names in an order that differs from the sorted order.
        let names: Vec<Symbol> = (0..20).rev().map(|i| syms.intern(&format!("f{i:02}"))).collect();
        let fl = FieldList::new(names.iter().map(|&n| (n, SecTy::bottom(bit8, &l))).collect());
        assert!(fl.has_sorted_layout());
        for &n in &names {
            assert_eq!(fl.get(n), Some(SecTy::bottom(bit8, &l)));
        }
        assert_eq!(fl.get(syms.intern("ghost")), None);
        // Narrow lists stay linear.
        let narrow = FieldList::new(vec![(names[0], SecTy::bottom(bit8, &l))]);
        assert!(!narrow.has_sorted_layout());
        assert_eq!(narrow.get(names[0]), Some(SecTy::bottom(bit8, &l)));
    }

    #[test]
    fn raising_labels() {
        let l = lat();
        let mut pool = TyPool::new();
        let bit8 = pool.bit(8);
        let t = SecTy::bottom(bit8, &l);
        let raised = t.raised(&l, l.top());
        assert_eq!(raised.label, l.top());
        assert_eq!(raised.ty, bit8);
        // Raising by bottom is the identity.
        assert_eq!(t.raised(&l, l.bottom()), t);
    }

    #[test]
    fn int_bit_compatibility() {
        let l = lat();
        let mut pool = TyPool::new();
        let bit32 = pool.bit(32);
        let int = SecTy::bottom(TyId::INT, &l);
        let bit = SecTy::bottom(bit32, &l);
        assert!(pool.same_shape(int, bit));
        assert!(pool.same_shape(bit, int));
        assert!(!pool.same_shape(SecTy::bottom(TyId::BOOL, &l), bit));
    }

    #[test]
    fn nested_compatibility_checks_labels() {
        let l = lat();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let f = syms.intern("f");
        let bit8 = pool.bit(8);
        let mk = |pool: &mut TyPool, label: Label| {
            let rec = pool.record(FieldList::new(vec![(f, SecTy::new(bit8, label))]));
            SecTy::bottom(rec, &l)
        };
        let low = mk(&mut pool, l.bottom());
        let low2 = mk(&mut pool, l.bottom());
        let high = mk(&mut pool, l.top());
        assert_eq!(low, low2, "hash-consing: equal structure, equal id");
        assert!(pool.same_shape(low, low2));
        // Field labels are part of the type (Figure 4): mismatch rejected.
        assert!(!pool.same_shape(low, high));
    }

    #[test]
    fn stack_compatibility() {
        let l = lat();
        let mut pool = TyPool::new();
        let bit8 = pool.bit(8);
        let s8 = pool.stack(SecTy::bottom(bit8, &l), 4);
        let s8b = pool.stack(SecTy::bottom(bit8, &l), 4);
        let s5 = pool.stack(SecTy::bottom(bit8, &l), 5);
        assert_eq!(s8, s8b, "hash-consing");
        assert!(pool.compatible(s8, s8b));
        assert!(!pool.compatible(s8, s5));
    }

    #[test]
    fn display_with_labels() {
        let l = lat();
        let syms = Interner::new();
        let mut pool = TyPool::new();
        let bit8 = pool.bit(8);
        let t = SecTy::new(bit8, l.top());
        assert_eq!(display_secty(&pool, &syms, &l, t), "<bit<8>, high>");
    }

    #[test]
    fn fn_param_partition() {
        let l = lat();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let bit8 = pool.bit(8);
        let x = syms.intern("x");
        let c = syms.intern("c");
        let ft = FnTy {
            params: vec![
                FnParam {
                    name: x,
                    direction: Direction::In,
                    ty: SecTy::bottom(bit8, &l),
                    control_plane: false,
                },
                FnParam {
                    name: c,
                    direction: Direction::In,
                    ty: SecTy::bottom(bit8, &l),
                    control_plane: true,
                },
            ],
            pc_fn: l.top(),
            ret: SecTy::unit(&l),
            is_action: true,
        };
        assert_eq!(ft.data_params().count(), 1);
        assert_eq!(ft.control_params().count(), 1);
        assert_eq!(ft.data_params().next().unwrap().name, x);
        assert_eq!(ft.control_params().next().unwrap().name, c);
    }
}
