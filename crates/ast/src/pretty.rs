//! Pretty-printer for surface programs.
//!
//! Emits the same annotated-P4 concrete syntax the parser accepts, so that
//! `parse ∘ pretty` is the identity up to spans. Used by the synthetic
//! program generator and by round-trip tests.

use crate::span::Spanned;
use crate::surface::*;

/// Pretty-prints a whole program.
#[must_use]
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    let mut pr = Printer::new(&mut out);
    for item in &p.items {
        pr.item(item);
        pr.newline();
    }
    out
}

/// Pretty-prints a single expression (mainly for diagnostics).
#[must_use]
pub fn expr_to_string(e: &Expr) -> String {
    let mut out = String::new();
    let mut pr = Printer::new(&mut out);
    pr.expr(e);
    out
}

/// Pretty-prints a single statement.
#[must_use]
pub fn stmt_to_string(s: &Stmt) -> String {
    let mut out = String::new();
    let mut pr = Printer::new(&mut out);
    pr.stmt(s);
    out
}

struct Printer<'a> {
    out: &'a mut String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn new(out: &'a mut String) -> Self {
        Printer { out, indent: 0 }
    }

    fn write(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Type(t) => self.type_decl(t),
            Item::Lattice(l) => self.lattice_decl(l),
            Item::Function(f) => self.function_decl(f),
            Item::Action(a) => self.action_decl(a),
            Item::Control(c) => self.control_decl(c),
        }
    }

    fn lattice_decl(&mut self, l: &LatticeDecl) {
        self.write("lattice {");
        self.indent += 1;
        for (lo, hi) in &l.order {
            self.newline();
            self.write(&format!("{} < {};", lo.node, hi.node));
        }
        self.indent -= 1;
        self.newline();
        self.write("}");
        self.newline();
    }

    fn type_decl(&mut self, t: &TypeDecl) {
        match t {
            TypeDecl::Typedef { ty, name } => {
                self.write("typedef ");
                self.ann_type(ty);
                self.write(&format!(" {};", name.node));
                self.newline();
            }
            TypeDecl::Header { name, fields } => {
                self.write(&format!("header {} {{", name.node));
                self.fields(fields);
                self.write("}");
                self.newline();
            }
            TypeDecl::Struct { name, fields } => {
                self.write(&format!("struct {} {{", name.node));
                self.fields(fields);
                self.write("}");
                self.newline();
            }
            TypeDecl::MatchKind { kinds } => {
                self.write("match_kind { ");
                for (i, k) in kinds.iter().enumerate() {
                    if i > 0 {
                        self.write(", ");
                    }
                    self.write(&k.node);
                }
                self.write(" }");
                self.newline();
            }
        }
    }

    fn fields(&mut self, fields: &[(Spanned<String>, AnnType)]) {
        self.indent += 1;
        for (name, ty) in fields {
            self.newline();
            self.ann_type(ty);
            self.write(&format!(" {};", name.node));
        }
        self.indent -= 1;
        self.newline();
    }

    fn ann_type(&mut self, t: &AnnType) {
        match &t.label {
            Some(l) => self.write(&format!("<{}, {}>", t.ty, l.node)),
            None => self.write(&t.ty.to_string()),
        }
    }

    fn params(&mut self, params: &[Param]) {
        self.write("(");
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                self.write(", ");
            }
            if let Some(d) = p.direction {
                self.write(&format!("{d} "));
            }
            self.ann_type(&p.ty);
            self.write(&format!(" {}", p.name.node));
        }
        self.write(")");
    }

    fn action_decl(&mut self, a: &ActionDecl) {
        self.write(&format!("action {}", a.name.node));
        self.params(&a.params);
        self.block(&a.body);
        self.newline();
    }

    fn function_decl(&mut self, f: &FunctionDecl) {
        self.write("function ");
        self.ann_type(&f.ret);
        self.write(&format!(" {}", f.name.node));
        self.params(&f.params);
        self.block(&f.body);
        self.newline();
    }

    fn control_decl(&mut self, c: &ControlDecl) {
        if let Some(pc) = &c.pc {
            self.write(&format!("@pc({}) ", pc.node));
        }
        self.write(&format!("control {}", c.name.node));
        self.params(&c.params);
        self.write(" {");
        self.indent += 1;
        for d in &c.decls {
            self.newline();
            self.ctrl_decl(d);
        }
        self.newline();
        self.write("apply");
        self.block(&c.apply);
        self.indent -= 1;
        self.newline();
        self.write("}");
        self.newline();
    }

    fn ctrl_decl(&mut self, d: &CtrlDecl) {
        match d {
            CtrlDecl::Var(v) => self.var_decl(v),
            CtrlDecl::Action(a) => self.action_decl(a),
            CtrlDecl::Function(f) => self.function_decl(f),
            CtrlDecl::Table(t) => self.table_decl(t),
        }
    }

    fn table_decl(&mut self, t: &TableDecl) {
        self.write(&format!("table {} {{", t.name.node));
        self.indent += 1;
        if !t.keys.is_empty() {
            self.newline();
            self.write("key = { ");
            for (i, k) in t.keys.iter().enumerate() {
                if i > 0 {
                    self.write(" ");
                }
                self.expr(&k.expr);
                self.write(&format!(": {};", k.match_kind.node));
            }
            self.write(" }");
        }
        self.newline();
        self.write("actions = { ");
        for (i, a) in t.actions.iter().enumerate() {
            if i > 0 {
                self.write(" ");
            }
            self.write(&a.name.node);
            if !a.args.is_empty() {
                self.write("(");
                for (j, arg) in a.args.iter().enumerate() {
                    if j > 0 {
                        self.write(", ");
                    }
                    self.expr(arg);
                }
                self.write(")");
            }
            self.write(";");
        }
        self.write(" }");
        if let Some(d) = &t.default_action {
            self.newline();
            self.write(&format!("default_action = {};", d.node));
        }
        self.indent -= 1;
        self.newline();
        self.write("}");
        self.newline();
    }

    fn var_decl(&mut self, v: &VarDecl) {
        self.ann_type(&v.ty);
        self.write(&format!(" {}", v.name.node));
        if let Some(init) = &v.init {
            self.write(" = ");
            self.expr(init);
        }
        self.write(";");
    }

    fn block(&mut self, stmts: &[Stmt]) {
        self.write(" {");
        self.indent += 1;
        for s in stmts {
            self.newline();
            self.stmt(s);
        }
        self.indent -= 1;
        self.newline();
        self.write("}");
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Call(e) => {
                // Re-sugar zero-argument calls on table names as `.apply()`:
                // the parser accepts both, but `t.apply()` is idiomatic P4.
                self.expr(e);
                self.write(";");
            }
            StmtKind::Assign(lhs, rhs) => {
                self.expr(lhs);
                self.write(" = ");
                self.expr(rhs);
                self.write(";");
            }
            StmtKind::If(c, t, e) => {
                self.write("if (");
                self.expr(c);
                self.write(") ");
                self.stmt_as_block(t);
                if let Some(e) = e {
                    self.write(" else ");
                    self.stmt_as_block(e);
                }
            }
            StmtKind::Block(ss) => {
                self.write("{");
                self.indent += 1;
                for s in ss {
                    self.newline();
                    self.stmt(s);
                }
                self.indent -= 1;
                self.newline();
                self.write("}");
            }
            StmtKind::Exit => self.write("exit;"),
            StmtKind::Return(None) => self.write("return;"),
            StmtKind::Return(Some(e)) => {
                self.write("return ");
                self.expr(e);
                self.write(";");
            }
            StmtKind::VarDecl(v) => self.var_decl(v),
        }
    }

    fn stmt_as_block(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(_) => self.stmt(s),
            _ => {
                self.write("{");
                self.indent += 1;
                self.newline();
                self.stmt(s);
                self.indent -= 1;
                self.newline();
                self.write("}");
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Bool(b) => self.write(if *b { "true" } else { "false" }),
            ExprKind::Int { value, width } => match width {
                Some(w) => self.write(&format!("{w}w{value}")),
                None => self.write(&value.to_string()),
            },
            ExprKind::Var(x) => self.write(x),
            ExprKind::Index(a, i) => {
                self.atom(a);
                self.write("[");
                self.expr(i);
                self.write("]");
            }
            ExprKind::Binary(op, a, b) => {
                self.atom(a);
                self.write(&format!(" {op} "));
                self.atom(b);
            }
            ExprKind::Unary(op, a) => {
                self.write(&op.to_string());
                self.atom(a);
            }
            ExprKind::Record(fields) => {
                self.write("{ ");
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        self.write(", ");
                    }
                    self.write(&format!("{} = ", n.node));
                    self.expr(v);
                }
                self.write(" }");
            }
            ExprKind::Field(a, f) => {
                self.atom(a);
                self.write(&format!(".{}", f.node));
            }
            ExprKind::Call(f, args) => {
                self.atom(f);
                self.write("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.write(", ");
                    }
                    self.expr(a);
                }
                self.write(")");
            }
        }
    }

    /// Prints an expression, parenthesizing compound forms so the output
    /// never depends on precedence subtleties.
    fn atom(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Binary(..) | ExprKind::Unary(..) => {
                self.write("(");
                self.expr(e);
                self.write(")");
            }
            _ => self.expr(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, Spanned};

    fn sp() -> Span {
        Span::dummy()
    }

    fn s(n: &str) -> Spanned<String> {
        Spanned::new(n.to_string(), sp())
    }

    #[test]
    fn expr_printing() {
        let e = Expr::new(
            ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr::var("x", sp())),
                Box::new(Expr::new(ExprKind::Int { value: 5, width: Some(8) }, sp())),
            ),
            sp(),
        );
        assert_eq!(expr_to_string(&e), "x + 8w5");
    }

    #[test]
    fn nested_exprs_parenthesized() {
        let inner = Expr::new(
            ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr::var("a", sp())),
                Box::new(Expr::var("b", sp())),
            ),
            sp(),
        );
        let outer = Expr::new(
            ExprKind::Binary(BinOp::Mul, Box::new(inner), Box::new(Expr::var("c", sp()))),
            sp(),
        );
        assert_eq!(expr_to_string(&outer), "(a + b) * c");
    }

    #[test]
    fn stmt_printing() {
        let st = Stmt::new(
            StmtKind::Assign(
                Expr::new(ExprKind::Field(Box::new(Expr::var("hdr", sp())), s("ttl")), sp()),
                Expr::new(ExprKind::Int { value: 64, width: None }, sp()),
            ),
            sp(),
        );
        assert_eq!(stmt_to_string(&st), "hdr.ttl = 64;");
    }

    #[test]
    fn header_printing() {
        let mut p = Program::default();
        p.items.push(Item::Type(TypeDecl::Header {
            name: s("ipv4_t"),
            fields: vec![(
                s("ttl"),
                AnnType { ty: TypeExpr::Bit(8), label: Some(s("high")), span: sp() },
            )],
        }));
        let out = program(&p);
        assert!(out.contains("header ipv4_t {"), "got: {out}");
        assert!(out.contains("<bit<8>, high> ttl;"), "got: {out}");
    }

    #[test]
    fn record_and_call_printing() {
        let rec = Expr::new(
            ExprKind::Record(vec![(s("f"), Expr::new(ExprKind::Bool(true), sp()))]),
            sp(),
        );
        assert_eq!(expr_to_string(&rec), "{ f = true }");
        let call = Expr::new(
            ExprKind::Call(Box::new(Expr::var("act", sp())), vec![Expr::var("x", sp())]),
            sp(),
        );
        assert_eq!(expr_to_string(&call), "act(x)");
    }
}
