//! The hash-consing type pool: structurally equal security types are
//! allocated once and compared by id.
//!
//! Every resolved structural type [`Ty`] the checker or interpreter
//! constructs goes through [`TyPool::intern`], which returns a copyable
//! [`TyId`] handle. Children of compound types are themselves pooled
//! (`Record`/`Header` fields and `Stack` elements hold `SecTy = (TyId,
//! Label)` pairs), so interning is bottom-up and the pool maintains the
//! invariant:
//!
//! > within one pool, `a == b` (as [`TyId`]s) **iff** the denoted types are
//! > structurally equal.
//!
//! That turns the τ-equality side conditions of T-Assign / T-Call — deep
//! recursive walks in the naive representation — into id comparisons on the
//! hot path, with a slow path only for the `int` ↔ `bit<n>` literal
//! coercion (which genuinely relates *distinct* types).
//!
//! A [`TyCtx`] bundles the pool with the string [`Interner`] whose
//! [`Symbol`]s key record/header fields; checker sessions share one
//! `TyCtx` across every program they check (via [`SharedTyCtx`]), so
//! prelude types are pooled exactly once per session.
//!
//! # Examples
//!
//! ```
//! use p4bid_ast::pool::TyPool;
//! use p4bid_ast::sectype::{FieldList, SecTy, TyId};
//! use p4bid_lattice::Lattice;
//!
//! let lat = Lattice::two_point();
//! let mut pool = TyPool::new();
//! let bit8 = pool.bit(8);
//! let mut syms = p4bid_ast::intern::Interner::new();
//! let ttl = syms.intern("ttl");
//! let h1 = pool.header(FieldList::new(vec![(ttl, SecTy::bottom(bit8, &lat))]));
//! let h2 = pool.header(FieldList::new(vec![(ttl, SecTy::bottom(bit8, &lat))]));
//! assert_eq!(h1, h2, "hash-consed: one allocation, O(1) equality");
//! assert_ne!(h1, TyId::BOOL);
//! ```

use crate::intern::{Interner, Symbol};
use crate::sectype::{FieldList, FnTy, SecTy, Ty, TyId};
use p4bid_lattice::Label;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// A hash-consing pool of structural type nodes.
///
/// Append-only: ids stay valid for the lifetime of the pool, so snapshots
/// (e.g. a checker session's per-lattice prelude state) can hold plain
/// [`TyId`]s across later interning.
#[derive(Debug, Clone)]
pub struct TyPool {
    nodes: Vec<Ty>,
    map: HashMap<Ty, TyId>,
}

impl Default for TyPool {
    fn default() -> Self {
        Self::new()
    }
}

impl TyPool {
    /// A pool with the label-free primitives pre-interned at their fixed
    /// ids ([`TyId::BOOL`], [`TyId::INT`], [`TyId::UNIT`],
    /// [`TyId::MATCH_KIND`]).
    #[must_use]
    pub fn new() -> Self {
        let mut pool = TyPool { nodes: Vec::new(), map: HashMap::new() };
        assert_eq!(pool.intern(Ty::Bool), TyId::BOOL);
        assert_eq!(pool.intern(Ty::Int), TyId::INT);
        assert_eq!(pool.intern(Ty::Unit), TyId::UNIT);
        assert_eq!(pool.intern(Ty::MatchKind), TyId::MATCH_KIND);
        pool
    }

    /// Interns a structural node, returning its id. Idempotent: equal
    /// nodes (whose children were interned in this pool) share one id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct types are interned
    /// (unreachable for real programs).
    pub fn intern(&mut self, ty: Ty) -> TyId {
        if let Some(&id) = self.map.get(&ty) {
            return id;
        }
        let id = TyId(u32::try_from(self.nodes.len()).expect("type pool overflow"));
        self.nodes.push(ty.clone());
        self.map.insert(ty, id);
        id
    }

    /// The structural node an id stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different pool and is out of range.
    #[must_use]
    pub fn kind(&self, id: TyId) -> &Ty {
        &self.nodes[id.index()]
    }

    /// Number of distinct pooled types.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the primitives are pooled. Never true in practice
    /// (`new` pre-interns four nodes); provided for API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ------------------------------------------------------------------
    // Construction shorthands
    // ------------------------------------------------------------------

    /// Interns `bit<width>`.
    pub fn bit(&mut self, width: u16) -> TyId {
        self.intern(Ty::Bit(width))
    }

    /// Interns a record (struct) type.
    pub fn record(&mut self, fields: FieldList) -> TyId {
        self.intern(Ty::Record(Rc::new(fields)))
    }

    /// Interns a header type.
    pub fn header(&mut self, fields: FieldList) -> TyId {
        self.intern(Ty::Header(Rc::new(fields)))
    }

    /// Interns a stack type.
    pub fn stack(&mut self, elem: SecTy, len: u32) -> TyId {
        self.intern(Ty::Stack(elem, len))
    }

    /// Interns a table type with application bound `pc_tbl`.
    pub fn table(&mut self, pc_tbl: Label) -> TyId {
        self.intern(Ty::Table(pc_tbl))
    }

    /// Interns a function/action type.
    pub fn function(&mut self, fnty: FnTy) -> TyId {
        self.intern(Ty::Function(Rc::new(fnty)))
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Whether `id` is a base scalar (`bool`, `int`, `bit<n>`).
    #[must_use]
    pub fn is_base_scalar(&self, id: TyId) -> bool {
        self.kind(id).is_base_scalar()
    }

    /// The record/header field list of `id`, if any.
    #[must_use]
    pub fn fields(&self, id: TyId) -> Option<&FieldList> {
        self.kind(id).fields()
    }

    /// Looks a record/header field up by symbol.
    #[must_use]
    pub fn field(&self, id: TyId, name: Symbol) -> Option<SecTy> {
        self.kind(id).field(name)
    }

    // ------------------------------------------------------------------
    // Equality / compatibility
    // ------------------------------------------------------------------

    /// Structural compatibility for the τ-equality side conditions,
    /// admitting the `int` literal ↔ `bit<n>` coercion in either
    /// direction (recursively through record/header fields and stack
    /// elements, whose labels must agree exactly).
    ///
    /// Fast path: hash-consing makes `a == b` equivalent to structural
    /// equality, so the recursion only runs when a coercion could relate
    /// two *distinct* types.
    #[must_use]
    pub fn compatible(&self, a: TyId, b: TyId) -> bool {
        if a == b {
            return true;
        }
        match (self.kind(a), self.kind(b)) {
            (Ty::Int, Ty::Bit(_)) | (Ty::Bit(_), Ty::Int) => true,
            (Ty::Record(x), Ty::Record(y)) | (Ty::Header(x), Ty::Header(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y.iter()).all(|((nx, tx), (ny, ty))| {
                        nx == ny && tx.label == ty.label && self.compatible(tx.ty, ty.ty)
                    })
            }
            (Ty::Stack(x, n), Ty::Stack(y, m)) => {
                n == m && x.label == y.label && self.compatible(x.ty, y.ty)
            }
            // Distinct ids of any other shape are structurally different
            // by the hash-consing invariant.
            _ => false,
        }
    }

    /// Whether two security types describe the same data layout and labels
    /// up to implicit `int → bit<n>` literal coercion. Outer labels are
    /// *not* compared; use this for the τ-equality side conditions of
    /// T-Assign / T-Call.
    #[must_use]
    pub fn same_shape(&self, a: SecTy, b: SecTy) -> bool {
        self.compatible(a.ty, b.ty)
    }

    // ------------------------------------------------------------------
    // Rendering (diagnostics boundary)
    // ------------------------------------------------------------------

    /// Renders the structural type for diagnostics (`bit<8>`,
    /// `struct { f: … }`, …). Field names resolve through `syms`.
    #[must_use]
    pub fn display(&self, id: TyId, syms: &Interner) -> String {
        let mut out = String::new();
        self.write_ty(&mut out, id, syms);
        out
    }

    fn write_ty(&self, out: &mut String, id: TyId, syms: &Interner) {
        match self.kind(id) {
            Ty::Bool => out.push_str("bool"),
            Ty::Int => out.push_str("int"),
            Ty::Bit(n) => {
                let _ = write!(out, "bit<{n}>");
            }
            Ty::Unit => out.push_str("unit"),
            Ty::Record(fs) | Ty::Header(fs) => {
                out.push_str(if matches!(self.kind(id), Ty::Record(_)) {
                    "struct { "
                } else {
                    "header { "
                });
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: ", syms.resolve(*n));
                    self.write_ty(out, t.ty, syms);
                }
                out.push_str(" }");
            }
            Ty::Stack(t, n) => {
                self.write_ty(out, t.ty, syms);
                let _ = write!(out, "[{n}]");
            }
            Ty::MatchKind => out.push_str("match_kind"),
            Ty::Table(_) => out.push_str("table"),
            Ty::Function(ft) => {
                let _ = write!(out, "{}(…)", if ft.is_action { "action" } else { "function" });
            }
        }
    }
}

/// The shared naming/typing context: the string interner plus the type
/// pool. One per checker session; handed to every [`TypedProgram`] the
/// session produces (via [`SharedTyCtx`]) so the interpreter and the NI
/// harness can resolve symbols and type ids without copying tables.
///
/// [`TypedProgram`]: ../../p4bid_typeck/struct.TypedProgram.html
#[derive(Debug, Clone)]
pub struct TyCtx {
    /// Interned names (variables, fields, actions, labels, …); symbol 0
    /// is always the reserved empty-string sentinel.
    pub syms: Interner,
    /// Hash-consed structural types.
    pub types: TyPool,
}

impl Default for TyCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl TyCtx {
    /// A fresh context with a primitives-only pool. The interner starts
    /// with the empty string reserved at symbol 0 — the sentinel
    /// match-kind symbol `Value::init`-style zero values use — so slot 0
    /// never aliases a real name.
    #[must_use]
    pub fn new() -> Self {
        let mut syms = Interner::new();
        let sentinel = syms.intern("");
        debug_assert_eq!(sentinel.index(), 0);
        TyCtx { syms, types: TyPool::new() }
    }

    /// Wraps a fresh context for sharing.
    #[must_use]
    pub fn shared() -> SharedTyCtx {
        Rc::new(RefCell::new(TyCtx::new()))
    }
}

/// A shareable, interiorly mutable [`TyCtx`].
///
/// Both structures inside are append-only, so `Symbol`s and `TyId`s handed
/// out earlier stay valid while later programs grow the tables. Borrows are
/// taken once per coarse operation (one `check`, one interpreter step
/// group), never held across them.
pub type SharedTyCtx = Rc<RefCell<TyCtx>>;

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_lattice::Lattice;

    #[test]
    fn primitives_have_fixed_ids() {
        let pool = TyPool::new();
        assert_eq!(pool.kind(TyId::BOOL), &Ty::Bool);
        assert_eq!(pool.kind(TyId::INT), &Ty::Int);
        assert_eq!(pool.kind(TyId::UNIT), &Ty::Unit);
        assert_eq!(pool.kind(TyId::MATCH_KIND), &Ty::MatchKind);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut pool = TyPool::new();
        let a = pool.bit(8);
        let b = pool.bit(8);
        let c = pool.bit(9);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn nested_types_cons_to_one_id() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let f = syms.intern("f");
        let g = syms.intern("g");
        let bit8 = pool.bit(8);
        let mk = |pool: &mut TyPool| {
            let inner = pool.record(FieldList::new(vec![(f, SecTy::new(bit8, lat.top()))]));
            pool.record(FieldList::new(vec![(g, SecTy::bottom(inner, &lat))]))
        };
        let a = mk(&mut pool);
        let before = pool.len();
        let b = mk(&mut pool);
        assert_eq!(a, b);
        assert_eq!(pool.len(), before, "re-interning allocates nothing");
    }

    #[test]
    fn compatible_is_reflexive_and_coercive() {
        let lat = Lattice::two_point();
        let mut pool = TyPool::new();
        let bit8 = pool.bit(8);
        let bit16 = pool.bit(16);
        assert!(pool.compatible(bit8, bit8));
        assert!(pool.compatible(bit8, TyId::INT));
        assert!(pool.compatible(TyId::INT, bit16));
        assert!(!pool.compatible(bit8, bit16));
        assert!(!pool.compatible(TyId::BOOL, bit8));
        let _ = lat;
    }

    #[test]
    fn nested_int_coercion_recurses() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let f = syms.intern("f");
        let bit8 = pool.bit(8);
        let rec_bit = pool.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        let rec_int = pool.record(FieldList::new(vec![(f, SecTy::bottom(TyId::INT, &lat))]));
        assert_ne!(rec_bit, rec_int);
        assert!(pool.compatible(rec_bit, rec_int), "int field coerces to bit field");
    }

    #[test]
    fn table_types_distinct_by_label() {
        let lat = Lattice::two_point();
        let mut pool = TyPool::new();
        let lo = pool.table(lat.bottom());
        let hi = pool.table(lat.top());
        assert_ne!(lo, hi);
        assert!(!pool.compatible(lo, hi));
        assert_eq!(pool.table(lat.bottom()), lo);
    }

    #[test]
    fn display_matches_surface_syntax() {
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let lat = Lattice::two_point();
        let bit8 = pool.bit(8);
        assert_eq!(pool.display(bit8, &syms), "bit<8>");
        assert_eq!(pool.display(TyId::BOOL, &syms), "bool");
        let f = syms.intern("f");
        let rec = pool.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        assert_eq!(pool.display(rec, &syms), "struct { f: bit<8> }");
        let stack = pool.stack(SecTy::bottom(bit8, &lat), 4);
        assert_eq!(pool.display(stack, &syms), "bit<8>[4]");
    }

    #[test]
    fn shared_ctx_is_append_only_across_borrows() {
        let ctx = TyCtx::shared();
        let (a, bit8) = {
            let mut c = ctx.borrow_mut();
            let a = c.syms.intern("a");
            let bit8 = c.types.bit(8);
            (a, bit8)
        };
        {
            let mut c = ctx.borrow_mut();
            c.syms.intern("b");
            c.types.bit(16);
        }
        let c = ctx.borrow();
        assert_eq!(c.syms.resolve(a), "a");
        assert_eq!(c.types.kind(bit8), &Ty::Bit(8));
    }
}
