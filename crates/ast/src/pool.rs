//! The hash-consing type pool: structurally equal security types are
//! allocated once and compared by id — with an immutable, shareable
//! *frozen* tier for cross-worker reuse.
//!
//! Every resolved structural type [`Ty`] the checker or interpreter
//! constructs goes through [`TyPool::intern`], which returns a copyable
//! [`TyId`] handle. Children of compound types are themselves pooled
//! (`Record`/`Header` fields and `Stack` elements hold `SecTy = (TyId,
//! Label)` pairs), so interning is bottom-up and the pool maintains the
//! invariant:
//!
//! > within one pool, `a == b` (as [`TyId`]s) **iff** the denoted types are
//! > structurally equal.
//!
//! That turns the τ-equality side conditions of T-Assign / T-Call — deep
//! recursive walks in the naive representation — into id comparisons on the
//! hot path, with a slow path only for the `int` ↔ `bit<n>` literal
//! coercion (which genuinely relates *distinct* types).
//!
//! The pool comes in **two tiers**: a root-tier [`TyPool`] can be
//! [`freeze`](TyPool::freeze)d into an immutable, `Send + Sync`
//! [`FrozenPool`] that many worker threads share via `Arc`, each layering a
//! private overlay pool on top ([`TyPool::with_base`]). Overlay ids carry
//! the [`TIER_BIT`]; their
//! [`index`](TyId::index) continues after the frozen segment, so ids stay
//! globally dense and id equality stays O(1) across tiers (a frozen and an
//! overlay id are never equal, and structurally equal types interned
//! through one pool always resolve to one id, frozen tier first).
//!
//! A [`TyCtx`] bundles the pool with the string [`Interner`] whose
//! [`Symbol`]s key record/header fields; checker sessions share one
//! `TyCtx` across every program they check (via [`SharedTyCtx`]), so
//! prelude types are pooled exactly once per session — and, after
//! [`TyCtx::freeze`], exactly once per *fleet* of sessions.
//!
//! # Examples
//!
//! ```
//! use p4bid_ast::pool::TyPool;
//! use p4bid_ast::sectype::{FieldList, SecTy, TyId};
//! use p4bid_lattice::Lattice;
//!
//! let lat = Lattice::two_point();
//! let mut pool = TyPool::new();
//! let bit8 = pool.bit(8);
//! let mut syms = p4bid_ast::intern::Interner::new();
//! let ttl = syms.intern("ttl");
//! let h1 = pool.header(FieldList::new(vec![(ttl, SecTy::bottom(bit8, &lat))]));
//! let h2 = pool.header(FieldList::new(vec![(ttl, SecTy::bottom(bit8, &lat))]));
//! assert_eq!(h1, h2, "hash-consed: one allocation, O(1) equality");
//! assert_ne!(h1, TyId::BOOL);
//!
//! // Freeze the pool; overlays resolve frozen types without re-interning.
//! let frozen = std::sync::Arc::new(pool.freeze());
//! let mut overlay = TyPool::with_base(std::sync::Arc::clone(&frozen));
//! let h3 = overlay.header(FieldList::new(vec![(ttl, SecTy::bottom(bit8, &lat))]));
//! assert_eq!(h3, h1, "frozen types keep their ids in every overlay");
//! ```

use crate::intern::{FrozenInterner, Interner, Symbol};
use crate::sectype::{FieldList, FnParam, FnTy, SecTy, Ty, TyId, TIER_BIT};
use p4bid_lattice::{Label, Lattice};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

/// An immutable, `Send + Sync` pool segment produced by [`TyPool::freeze`].
///
/// Shared across worker threads via `Arc`; workers extend it through
/// private [`TyPool`] overlays. Also carries the frozen part of the
/// label-push memo table so annotated compound types resolved while
/// warming the segment stay O(1) for every worker.
#[derive(Debug)]
pub struct FrozenPool {
    nodes: Vec<Ty>,
    map: HashMap<Ty, TyId>,
    /// Lattices the push memo was warmed under; memo keys carry an index
    /// into this registry (labels are lattice-relative, see
    /// [`TyPool::push_label`]).
    lattices: Vec<Lattice>,
    push_cache: HashMap<(u32, TyId, Label), TyId>,
}

impl FrozenPool {
    /// The structural node a frozen id stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a frozen-tier id of this segment.
    #[must_use]
    pub fn kind(&self, id: TyId) -> &Ty {
        &self.nodes[id.index()]
    }

    /// Number of types in the frozen segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the segment is empty (never true for segments frozen from
    /// [`TyPool::new`], which pre-interns the primitives).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Thaws the frozen segment back into a mutable *root-tier* pool with
    /// every id preserved: the thawed pool resolves exactly the ids this
    /// segment handed out, and new nodes continue the dense index sequence
    /// without a tier bit. The hash-cons map, lattice registry, and push
    /// memo all carry over. Cheap — compound nodes are `Arc`-backed, so
    /// the tables clone by refcount.
    ///
    /// First half of a *refreeze* (see [`FrozenTyCtx::refreeze`]): thaw,
    /// absorb per-worker overlay tables, freeze again into a fatter root.
    #[must_use]
    pub fn thaw(&self) -> TyPool {
        TyPool {
            base: None,
            base_len: 0,
            nodes: self.nodes.clone(),
            map: self.map.clone(),
            lattices: self.lattices.clone(),
            push_cache: self.push_cache.clone(),
            frozen_hits: 0,
            intern_calls: 0,
            push_hits: 0,
        }
    }
}

/// A hash-consing pool of structural type nodes.
///
/// Append-only: ids stay valid for the lifetime of the pool, so snapshots
/// (e.g. a checker session's per-lattice prelude state) can hold plain
/// [`TyId`]s across later interning. Optionally layered over a shared
/// immutable [`FrozenPool`] base segment (see
/// [`with_base`](TyPool::with_base)): interning probes the frozen map
/// first, and only genuinely new types grow the private overlay.
#[derive(Debug, Clone)]
pub struct TyPool {
    /// The shared immutable base segment, if any.
    base: Option<Arc<FrozenPool>>,
    /// `base.len()`, cached (0 without a base).
    base_len: u32,
    /// Overlay nodes; global index = `base_len + local index`.
    nodes: Vec<Ty>,
    map: HashMap<Ty, TyId>,
    /// Lattices the overlay push memo was warmed under (memo keys index
    /// into this registry — labels are lattice-relative, and one pool
    /// serves programs under many lattices).
    lattices: Vec<Lattice>,
    /// Label-push memo: `(lattice, compound id, pushed label) → pushed
    /// compound id` (overlay part; the frozen part lives in the base
    /// segment, keyed by the base's own lattice registry).
    push_cache: HashMap<(u32, TyId, Label), TyId>,
    /// `intern` calls answered by the frozen segment.
    frozen_hits: u64,
    /// Total `intern` calls.
    intern_calls: u64,
    /// `push_label` calls answered by either memo tier.
    push_hits: u64,
}

impl Default for TyPool {
    fn default() -> Self {
        Self::new()
    }
}

impl TyPool {
    /// A root-tier pool with the label-free primitives pre-interned at
    /// their fixed ids ([`TyId::BOOL`], [`TyId::INT`], [`TyId::UNIT`],
    /// [`TyId::MATCH_KIND`]).
    #[must_use]
    pub fn new() -> Self {
        let mut pool = TyPool {
            base: None,
            base_len: 0,
            nodes: Vec::new(),
            map: HashMap::new(),
            lattices: Vec::new(),
            push_cache: HashMap::new(),
            frozen_hits: 0,
            intern_calls: 0,
            push_hits: 0,
        };
        assert_eq!(pool.intern(Ty::Bool), TyId::BOOL);
        assert_eq!(pool.intern(Ty::Int), TyId::INT);
        assert_eq!(pool.intern(Ty::Unit), TyId::UNIT);
        assert_eq!(pool.intern(Ty::MatchKind), TyId::MATCH_KIND);
        pool
    }

    /// A pool layered over a frozen base segment: types already in the
    /// base resolve to their frozen ids (the fixed primitive ids included,
    /// since every root-tier pool pre-interns them); new types go into a
    /// private overlay whose ids carry the tier bit.
    #[must_use]
    pub fn with_base(base: Arc<FrozenPool>) -> Self {
        let base_len = u32::try_from(base.len()).expect("frozen pool fits u32");
        debug_assert_eq!(base.kind(TyId::BOOL), &Ty::Bool, "base was frozen from TyPool::new");
        TyPool {
            base_len,
            base: Some(base),
            nodes: Vec::new(),
            map: HashMap::new(),
            lattices: Vec::new(),
            push_cache: HashMap::new(),
            frozen_hits: 0,
            intern_calls: 0,
            push_hits: 0,
        }
    }

    /// Interns a structural node, returning its id. Idempotent: equal
    /// nodes (whose children were interned in this pool) share one id,
    /// with frozen-tier ids winning when the node is in the base segment.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX / 2` distinct types are interned
    /// (unreachable for real programs).
    pub fn intern(&mut self, ty: Ty) -> TyId {
        self.intern_calls += 1;
        if let Some(base) = &self.base {
            if let Some(&id) = base.map.get(&ty) {
                self.frozen_hits += 1;
                return id;
            }
        }
        if let Some(&id) = self.map.get(&ty) {
            return id;
        }
        let local = u32::try_from(self.nodes.len()).expect("type pool overflow");
        let ix = self.base_len.checked_add(local).expect("type pool overflow");
        assert!(ix < TIER_BIT, "type pool overflow");
        let raw = if self.base.is_some() { ix | TIER_BIT } else { ix };
        let id = TyId(raw);
        self.nodes.push(ty.clone());
        self.map.insert(ty, id);
        id
    }

    /// The structural node an id stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different pool and is out of range.
    #[must_use]
    pub fn kind(&self, id: TyId) -> &Ty {
        let ix = id.index();
        match &self.base {
            Some(base) if ix < self.base_len as usize => base.kind(id),
            _ => &self.nodes[ix - self.base_len as usize],
        }
    }

    /// Number of distinct pooled types across both tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base_len as usize + self.nodes.len()
    }

    /// Whether no types are pooled in either tier. Never true in practice
    /// (`new` pre-interns four nodes); provided for API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes a root-tier pool into an immutable, shareable segment,
    /// carrying the hash-cons map and the label-push memo along.
    /// Zero-copy: the node tables move, nothing is re-hashed.
    ///
    /// # Panics
    ///
    /// Panics if this pool is itself an overlay over a frozen base (tiers
    /// do not stack).
    #[must_use]
    pub fn freeze(self) -> FrozenPool {
        assert!(self.base.is_none(), "cannot freeze an overlay pool (tiers do not stack)");
        FrozenPool {
            nodes: self.nodes,
            map: self.map,
            lattices: self.lattices,
            push_cache: self.push_cache,
        }
    }

    /// `(frozen segment size, overlay size)` of this pool.
    #[must_use]
    pub fn tier_sizes(&self) -> (usize, usize) {
        (self.base_len as usize, self.nodes.len())
    }

    /// `(intern calls answered by the frozen segment, total intern calls)`
    /// since construction.
    #[must_use]
    pub fn frozen_hit_stats(&self) -> (u64, u64) {
        (self.frozen_hits, self.intern_calls)
    }

    /// Number of [`push_label`](TyPool::push_label) calls answered by the
    /// `(TyId, Label)` memo (either tier) since construction.
    #[must_use]
    pub fn push_cache_hits(&self) -> u64 {
        self.push_hits
    }

    // ------------------------------------------------------------------
    // Construction shorthands
    // ------------------------------------------------------------------

    /// Interns `bit<width>`.
    pub fn bit(&mut self, width: u16) -> TyId {
        self.intern(Ty::Bit(width))
    }

    /// Interns a record (struct) type.
    pub fn record(&mut self, fields: FieldList) -> TyId {
        self.intern(Ty::Record(Arc::new(fields)))
    }

    /// Interns a header type.
    pub fn header(&mut self, fields: FieldList) -> TyId {
        self.intern(Ty::Header(Arc::new(fields)))
    }

    /// Interns a stack type.
    pub fn stack(&mut self, elem: SecTy, len: u32) -> TyId {
        self.intern(Ty::Stack(elem, len))
    }

    /// Interns a table type with application bound `pc_tbl`.
    pub fn table(&mut self, pc_tbl: Label) -> TyId {
        self.intern(Ty::Table(pc_tbl))
    }

    /// Interns a function/action type.
    pub fn function(&mut self, fnty: FnTy) -> TyId {
        self.intern(Ty::Function(Arc::new(fnty)))
    }

    // ------------------------------------------------------------------
    // Label pushing (memoized)
    // ------------------------------------------------------------------

    /// Joins `label` onto a resolved type: onto the outer label for base
    /// scalars, recursively onto fields/elements for compounds (whose
    /// outer label stays `⊥`, Figure 4). New compound nodes are interned
    /// through the pool; pushing `⊥` is the identity and allocates
    /// nothing.
    ///
    /// Compound pushes are memoized per `(lattice, TyId, Label)` — first
    /// in the frozen segment's memo, then in the overlay's — so an
    /// annotated compound type (e.g. `<alice_t, A>`) resolves O(1) after
    /// its first use anywhere in the pool's lifetime. The lattice is part
    /// of the key because labels are lattice-relative indices while the
    /// pool dedups structurally equal types *across* lattices: the same
    /// `(TyId, Label)` pair can denote different joins under different
    /// lattices, and a cross-lattice memo hit would return wrongly-labeled
    /// fields (an information-flow soundness hole).
    #[must_use]
    pub fn push_label(&mut self, ty: SecTy, label: Label, lat: &Lattice) -> SecTy {
        if lat.is_bottom(label) {
            return ty;
        }
        match self.kind(ty.ty) {
            // Base scalars join the label directly; nothing to memoize.
            Ty::Bool | Ty::Int | Ty::Bit(_) => SecTy::new(ty.ty, lat.join(ty.label, label)),
            // Unit, match kinds, tables, functions are unaffected.
            Ty::Unit | Ty::MatchKind | Ty::Table(_) | Ty::Function(_) => ty,
            Ty::Record(_) | Ty::Header(_) | Ty::Stack(..) => {
                if let Some(base) = &self.base {
                    if let Some(ix) = lattice_ix(&base.lattices, lat) {
                        if let Some(&pushed) = base.push_cache.get(&(ix, ty.ty, label)) {
                            self.push_hits += 1;
                            return SecTy::new(pushed, ty.label);
                        }
                    }
                }
                let local_ix = register_lattice(&mut self.lattices, lat);
                if let Some(&pushed) = self.push_cache.get(&(local_ix, ty.ty, label)) {
                    self.push_hits += 1;
                    return SecTy::new(pushed, ty.label);
                }
                let pushed = match self.kind(ty.ty).clone() {
                    Ty::Record(fields) => {
                        let pushed = FieldList::new(
                            fields
                                .iter()
                                .map(|&(n, t)| (n, self.push_label(t, label, lat)))
                                .collect(),
                        );
                        self.record(pushed)
                    }
                    Ty::Header(fields) => {
                        let pushed = FieldList::new(
                            fields
                                .iter()
                                .map(|&(n, t)| (n, self.push_label(t, label, lat)))
                                .collect(),
                        );
                        self.header(pushed)
                    }
                    Ty::Stack(elem, n) => {
                        let pushed = self.push_label(elem, label, lat);
                        self.stack(pushed, n)
                    }
                    _ => unreachable!("guarded by the outer match"),
                };
                self.push_cache.insert((local_ix, ty.ty, label), pushed);
                SecTy::new(pushed, ty.label)
            }
        }
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Whether `id` is a base scalar (`bool`, `int`, `bit<n>`).
    #[must_use]
    pub fn is_base_scalar(&self, id: TyId) -> bool {
        self.kind(id).is_base_scalar()
    }

    /// The record/header field list of `id`, if any.
    #[must_use]
    pub fn fields(&self, id: TyId) -> Option<&FieldList> {
        self.kind(id).fields()
    }

    /// Looks a record/header field up by symbol.
    #[must_use]
    pub fn field(&self, id: TyId, name: Symbol) -> Option<SecTy> {
        self.kind(id).field(name)
    }

    // ------------------------------------------------------------------
    // Equality / compatibility
    // ------------------------------------------------------------------

    /// Structural compatibility for the τ-equality side conditions,
    /// admitting the `int` literal ↔ `bit<n>` coercion in either
    /// direction (recursively through record/header fields and stack
    /// elements, whose labels must agree exactly).
    ///
    /// Fast path: hash-consing makes `a == b` equivalent to structural
    /// equality, so the recursion only runs when a coercion could relate
    /// two *distinct* types.
    #[must_use]
    pub fn compatible(&self, a: TyId, b: TyId) -> bool {
        if a == b {
            return true;
        }
        match (self.kind(a), self.kind(b)) {
            (Ty::Int, Ty::Bit(_)) | (Ty::Bit(_), Ty::Int) => true,
            (Ty::Record(x), Ty::Record(y)) | (Ty::Header(x), Ty::Header(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y.iter()).all(|((nx, tx), (ny, ty))| {
                        nx == ny && tx.label == ty.label && self.compatible(tx.ty, ty.ty)
                    })
            }
            (Ty::Stack(x, n), Ty::Stack(y, m)) => {
                n == m && x.label == y.label && self.compatible(x.ty, y.ty)
            }
            // Distinct ids of any other shape are structurally different
            // by the hash-consing invariant.
            _ => false,
        }
    }

    /// Whether two security types describe the same data layout and labels
    /// up to implicit `int → bit<n>` literal coercion. Outer labels are
    /// *not* compared; use this for the τ-equality side conditions of
    /// T-Assign / T-Call.
    #[must_use]
    pub fn same_shape(&self, a: SecTy, b: SecTy) -> bool {
        self.compatible(a.ty, b.ty)
    }

    // ------------------------------------------------------------------
    // Rendering (diagnostics boundary)
    // ------------------------------------------------------------------

    /// Renders the structural type for diagnostics (`bit<8>`,
    /// `struct { f: … }`, …). Field names resolve through `syms`.
    #[must_use]
    pub fn display(&self, id: TyId, syms: &Interner) -> String {
        let mut out = String::new();
        self.write_ty(&mut out, id, syms);
        out
    }

    fn write_ty(&self, out: &mut String, id: TyId, syms: &Interner) {
        match self.kind(id) {
            Ty::Bool => out.push_str("bool"),
            Ty::Int => out.push_str("int"),
            Ty::Bit(n) => {
                let _ = write!(out, "bit<{n}>");
            }
            Ty::Unit => out.push_str("unit"),
            Ty::Record(fs) | Ty::Header(fs) => {
                out.push_str(if matches!(self.kind(id), Ty::Record(_)) {
                    "struct { "
                } else {
                    "header { "
                });
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: ", syms.resolve(*n));
                    self.write_ty(out, t.ty, syms);
                }
                out.push_str(" }");
            }
            Ty::Stack(t, n) => {
                self.write_ty(out, t.ty, syms);
                let _ = write!(out, "[{n}]");
            }
            Ty::MatchKind => out.push_str("match_kind"),
            Ty::Table(_) => out.push_str("table"),
            Ty::Function(ft) => {
                let _ = write!(out, "{}(…)", if ft.is_action { "action" } else { "function" });
            }
        }
    }
}

/// Index of `lat` in a push-memo lattice registry, if present (registries
/// hold the one-or-two lattices a workload actually uses, so a linear scan
/// of full `Lattice` equality is cheaper than any hashing scheme).
fn lattice_ix(lattices: &[Lattice], lat: &Lattice) -> Option<u32> {
    lattices.iter().position(|l| l == lat).map(|ix| ix as u32)
}

/// Index of `lat` in a push-memo lattice registry, registering it if new.
fn register_lattice(lattices: &mut Vec<Lattice>, lat: &Lattice) -> u32 {
    match lattice_ix(lattices, lat) {
        Some(ix) => ix,
        None => {
            let ix = u32::try_from(lattices.len()).expect("lattice registry");
            lattices.push(lat.clone());
            ix
        }
    }
}

/// The harvested overlay tables of one worker's [`TyCtx`]: everything the
/// worker interned *above* its frozen base, in append (id) order, plus the
/// overlay push-memo. Produced by [`TyCtx::into_overlay`], consumed by
/// [`FrozenTyCtx::refreeze`]. `Send`, so per-thread overlays can be
/// collected on a driver thread after the workers return.
#[derive(Debug)]
pub struct CtxOverlay {
    /// Overlay strings in symbol-index (append) order.
    syms: Vec<Arc<str>>,
    /// Overlay type nodes in id (append) order — children always precede
    /// parents, because interning is bottom-up.
    types: Vec<Ty>,
    /// The overlay push-memo lattice registry.
    lattices: Vec<Lattice>,
    /// Overlay push-memo entries; the `u32` indexes `lattices`.
    push_cache: Vec<((u32, TyId, Label), TyId)>,
}

impl CtxOverlay {
    /// Whether the overlay interned nothing (a refreeze absorbs it as a
    /// no-op and its [`IdRemap`] is the identity).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty() && self.types.is_empty() && self.push_cache.is_empty()
    }

    /// `(overlay strings, overlay type nodes)` harvested.
    #[must_use]
    pub fn sizes(&self) -> (usize, usize) {
        (self.syms.len(), self.types.len())
    }
}

/// A stable id translation table from one worker's overlay tier (over the
/// *old* frozen generation) into the refrozen root produced by
/// [`FrozenTyCtx::refreeze`].
///
/// Refreezing preserves every old frozen-tier id verbatim, so frozen ids
/// map to themselves; overlay ids translate through the table by local
/// position. A remap is only meaningful for handles produced by the one
/// overlay it was built for — feeding it another overlay's handles returns
/// garbage (or panics on out-of-range indices).
#[derive(Debug, Clone)]
pub struct IdRemap {
    /// Old frozen interner length (overlay symbol indices start here).
    base_syms: u32,
    /// Old frozen pool length (overlay type indices start here).
    base_types: u32,
    /// Overlay symbol local position → new root-tier symbol.
    syms: Vec<Symbol>,
    /// Overlay type id local position → new root-tier id.
    types: Vec<TyId>,
}

impl IdRemap {
    /// Translates a symbol (frozen-tier symbols map to themselves).
    #[must_use]
    pub fn sym(&self, s: Symbol) -> Symbol {
        if s.is_overlay() {
            self.syms[s.index() - self.base_syms as usize]
        } else {
            s
        }
    }

    /// Translates a dense symbol *index*, as used by `Vec`-backed side
    /// tables indexed by [`Symbol::index`].
    #[must_use]
    pub fn sym_index(&self, ix: usize) -> usize {
        if ix < self.base_syms as usize {
            ix
        } else {
            self.syms[ix - self.base_syms as usize].index()
        }
    }

    /// Translates a type id (frozen-tier ids map to themselves).
    #[must_use]
    pub fn ty(&self, t: TyId) -> TyId {
        if t.is_overlay() {
            self.types[t.index() - self.base_types as usize]
        } else {
            t
        }
    }

    /// Translates a security type (the label is lattice-relative and
    /// unaffected by refreezing).
    #[must_use]
    pub fn secty(&self, t: SecTy) -> SecTy {
        SecTy { ty: self.ty(t.ty), label: t.label }
    }

    /// Translates a function/action type value (parameter names and all
    /// embedded security types).
    #[must_use]
    pub fn fnty(&self, f: &FnTy) -> FnTy {
        FnTy {
            params: f
                .params
                .iter()
                .map(|p| FnParam { name: self.sym(p.name), ty: self.secty(p.ty), ..*p })
                .collect(),
            pc_fn: f.pc_fn,
            ret: self.secty(f.ret),
            is_action: f.is_action,
        }
    }

    /// Whether this remap translates nothing (the overlay was empty, so
    /// every handle maps to itself).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.syms.is_empty() && self.types.is_empty()
    }
}

/// Rebuilds an overlay node with its child handles translated: frozen-tier
/// handles are kept, overlay handles resolve through the partial maps
/// (complete for all children — append order puts children first).
fn remap_node(
    node: &Ty,
    sym_map: &[Symbol],
    ty_map: &[TyId],
    base_syms: u32,
    base_types: u32,
) -> Ty {
    let sym = |s: Symbol| {
        if s.is_overlay() {
            sym_map[s.index() - base_syms as usize]
        } else {
            s
        }
    };
    let ty = |t: TyId| {
        if t.is_overlay() {
            ty_map[t.index() - base_types as usize]
        } else {
            t
        }
    };
    let secty = |t: SecTy| SecTy { ty: ty(t.ty), label: t.label };
    match node {
        Ty::Bool | Ty::Int | Ty::Bit(_) | Ty::Unit | Ty::MatchKind | Ty::Table(_) => node.clone(),
        Ty::Record(fs) => Ty::Record(Arc::new(FieldList::new(
            fs.iter().map(|&(n, t)| (sym(n), secty(t))).collect(),
        ))),
        Ty::Header(fs) => Ty::Header(Arc::new(FieldList::new(
            fs.iter().map(|&(n, t)| (sym(n), secty(t))).collect(),
        ))),
        Ty::Stack(elem, n) => Ty::Stack(secty(*elem), *n),
        Ty::Function(ft) => Ty::Function(Arc::new(FnTy {
            params: ft
                .params
                .iter()
                .map(|p| FnParam { name: sym(p.name), ty: secty(p.ty), ..*p })
                .collect(),
            pc_fn: ft.pc_fn,
            ret: secty(ft.ret),
            is_action: ft.is_action,
        })),
    }
}

/// The shared naming/typing context: the string interner plus the type
/// pool. One per checker session; handed to every [`TypedProgram`] the
/// session produces (via [`SharedTyCtx`]) so the interpreter and the NI
/// harness can resolve symbols and type ids without copying tables.
///
/// [`TypedProgram`]: ../../p4bid_typeck/struct.TypedProgram.html
#[derive(Debug, Clone)]
pub struct TyCtx {
    /// Interned names (variables, fields, actions, labels, …); symbol 0
    /// is always the reserved empty-string sentinel.
    pub syms: Interner,
    /// Hash-consed structural types.
    pub types: TyPool,
}

impl Default for TyCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl TyCtx {
    /// A fresh root-tier context with a primitives-only pool. The interner
    /// starts with the empty string reserved at symbol 0 — the sentinel
    /// match-kind symbol `Value::init`-style zero values use — so slot 0
    /// never aliases a real name.
    #[must_use]
    pub fn new() -> Self {
        let mut syms = Interner::new();
        let sentinel = syms.intern("");
        debug_assert_eq!(sentinel.index(), 0);
        TyCtx { syms, types: TyPool::new() }
    }

    /// A context layered over a shared frozen segment: symbols and type
    /// ids from the segment stay valid, new ones go into private
    /// overlays.
    #[must_use]
    pub fn with_base(base: &Arc<FrozenTyCtx>) -> Self {
        TyCtx {
            syms: Interner::with_base(Arc::clone(&base.syms)),
            types: TyPool::with_base(Arc::clone(&base.types)),
        }
    }

    /// Freezes a root-tier context into an immutable, `Send + Sync`
    /// segment shareable across worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the context is itself layered over a frozen base (tiers
    /// do not stack).
    #[must_use]
    pub fn freeze(self) -> FrozenTyCtx {
        FrozenTyCtx { syms: Arc::new(self.syms.freeze()), types: Arc::new(self.types.freeze()) }
    }

    /// Wraps a fresh root-tier context for sharing.
    #[must_use]
    pub fn shared() -> SharedTyCtx {
        Rc::new(RefCell::new(TyCtx::new()))
    }

    /// Wraps an overlay context over a frozen segment for sharing.
    #[must_use]
    pub fn shared_with_base(base: &Arc<FrozenTyCtx>) -> SharedTyCtx {
        Rc::new(RefCell::new(TyCtx::with_base(base)))
    }

    /// Harvests the overlay tables of a context layered over a frozen
    /// base, consuming it. `None` for a root-tier context (there is no
    /// base to merge the tables back into).
    #[must_use]
    pub fn into_overlay(self) -> Option<CtxOverlay> {
        let syms = self.syms.into_overlay_strings()?;
        let TyPool { base, nodes, lattices, push_cache, .. } = self.types;
        // `with_base` sets both tiers together; be defensive anyway.
        base.as_ref()?;
        Some(CtxOverlay {
            syms,
            types: nodes,
            lattices,
            push_cache: push_cache.into_iter().collect(),
        })
    }
}

/// The frozen tier of a [`TyCtx`]: an immutable interner segment plus an
/// immutable pool segment, both `Send + Sync` and shared across worker
/// threads via `Arc`.
#[derive(Debug, Clone)]
pub struct FrozenTyCtx {
    /// The frozen interner segment.
    pub syms: Arc<FrozenInterner>,
    /// The frozen pool segment.
    pub types: Arc<FrozenPool>,
}

impl FrozenTyCtx {
    /// Merges harvested per-worker overlay tables into a fatter frozen
    /// root: thaw both segments, re-intern each overlay's strings and type
    /// nodes with child handles translated through the tables built so far
    /// (append order guarantees children precede parents), import the
    /// remapped push-memo entries, freeze again.
    ///
    /// Every id of the *old* frozen generation is preserved verbatim in
    /// the new root — state snapshotted against the old generation in
    /// frozen-pure form stays valid unchanged. Overlay ids translate
    /// through the returned [`IdRemap`]s (one per overlay, same order);
    /// entities duplicated across overlays dedup by hash-consing, so N
    /// workers that each interned the same program-local types contribute
    /// one copy.
    ///
    /// Every overlay must have been layered over *this* frozen generation;
    /// handles from any other generation make the remap meaningless.
    #[must_use]
    pub fn refreeze(&self, overlays: &[CtxOverlay]) -> (FrozenTyCtx, Vec<IdRemap>) {
        let base_syms = u32::try_from(self.syms.len()).expect("frozen interner fits u32");
        let base_types = u32::try_from(self.types.len()).expect("frozen pool fits u32");
        let mut syms = self.syms.thaw();
        let mut types = self.types.thaw();
        let mut remaps = Vec::with_capacity(overlays.len());
        for ov in overlays {
            let sym_map: Vec<Symbol> = ov.syms.iter().map(|s| syms.intern(s)).collect();
            let mut ty_map: Vec<TyId> = Vec::with_capacity(ov.types.len());
            for node in &ov.types {
                let remapped = remap_node(node, &sym_map, &ty_map, base_syms, base_types);
                ty_map.push(types.intern(remapped));
            }
            // Register the overlay's lattices first, in the overlay's own
            // (deterministic) order, so the root registry order does not
            // depend on memo-entry iteration order.
            for lat in &ov.lattices {
                let _ = register_lattice(&mut types.lattices, lat);
            }
            for &((lat_ix, ty, label), pushed) in &ov.push_cache {
                let root_ix = register_lattice(&mut types.lattices, &ov.lattices[lat_ix as usize]);
                let ty =
                    if ty.is_overlay() { ty_map[ty.index() - base_types as usize] } else { ty };
                let pushed = if pushed.is_overlay() {
                    ty_map[pushed.index() - base_types as usize]
                } else {
                    pushed
                };
                // Push results are a pure function of (lattice, type,
                // label), so colliding imports agree and insertion order
                // cannot matter.
                types.push_cache.insert((root_ix, ty, label), pushed);
            }
            remaps.push(IdRemap { base_syms, base_types, syms: sym_map, types: ty_map });
        }
        let ctx = FrozenTyCtx { syms: Arc::new(syms.freeze()), types: Arc::new(types.freeze()) };
        (ctx, remaps)
    }
}

/// A shareable, interiorly mutable [`TyCtx`].
///
/// Both structures inside are append-only, so `Symbol`s and `TyId`s handed
/// out earlier stay valid while later programs grow the tables. Borrows are
/// taken once per coarse operation (one `check`, one interpreter step
/// group), never held across them. The `Rc` handle is deliberately
/// thread-local; cross-thread sharing happens through the frozen tier
/// ([`FrozenTyCtx`]), never through this handle.
pub type SharedTyCtx = Rc<RefCell<TyCtx>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::Direction;
    use p4bid_lattice::Lattice;

    #[test]
    fn primitives_have_fixed_ids() {
        let pool = TyPool::new();
        assert_eq!(pool.kind(TyId::BOOL), &Ty::Bool);
        assert_eq!(pool.kind(TyId::INT), &Ty::Int);
        assert_eq!(pool.kind(TyId::UNIT), &Ty::Unit);
        assert_eq!(pool.kind(TyId::MATCH_KIND), &Ty::MatchKind);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut pool = TyPool::new();
        let a = pool.bit(8);
        let b = pool.bit(8);
        let c = pool.bit(9);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn nested_types_cons_to_one_id() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let f = syms.intern("f");
        let g = syms.intern("g");
        let bit8 = pool.bit(8);
        let mk = |pool: &mut TyPool| {
            let inner = pool.record(FieldList::new(vec![(f, SecTy::new(bit8, lat.top()))]));
            pool.record(FieldList::new(vec![(g, SecTy::bottom(inner, &lat))]))
        };
        let a = mk(&mut pool);
        let before = pool.len();
        let b = mk(&mut pool);
        assert_eq!(a, b);
        assert_eq!(pool.len(), before, "re-interning allocates nothing");
    }

    #[test]
    fn compatible_is_reflexive_and_coercive() {
        let lat = Lattice::two_point();
        let mut pool = TyPool::new();
        let bit8 = pool.bit(8);
        let bit16 = pool.bit(16);
        assert!(pool.compatible(bit8, bit8));
        assert!(pool.compatible(bit8, TyId::INT));
        assert!(pool.compatible(TyId::INT, bit16));
        assert!(!pool.compatible(bit8, bit16));
        assert!(!pool.compatible(TyId::BOOL, bit8));
        let _ = lat;
    }

    #[test]
    fn nested_int_coercion_recurses() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let f = syms.intern("f");
        let bit8 = pool.bit(8);
        let rec_bit = pool.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        let rec_int = pool.record(FieldList::new(vec![(f, SecTy::bottom(TyId::INT, &lat))]));
        assert_ne!(rec_bit, rec_int);
        assert!(pool.compatible(rec_bit, rec_int), "int field coerces to bit field");
    }

    #[test]
    fn table_types_distinct_by_label() {
        let lat = Lattice::two_point();
        let mut pool = TyPool::new();
        let lo = pool.table(lat.bottom());
        let hi = pool.table(lat.top());
        assert_ne!(lo, hi);
        assert!(!pool.compatible(lo, hi));
        assert_eq!(pool.table(lat.bottom()), lo);
    }

    #[test]
    fn display_matches_surface_syntax() {
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let lat = Lattice::two_point();
        let bit8 = pool.bit(8);
        assert_eq!(pool.display(bit8, &syms), "bit<8>");
        assert_eq!(pool.display(TyId::BOOL, &syms), "bool");
        let f = syms.intern("f");
        let rec = pool.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        assert_eq!(pool.display(rec, &syms), "struct { f: bit<8> }");
        let stack = pool.stack(SecTy::bottom(bit8, &lat), 4);
        assert_eq!(pool.display(stack, &syms), "bit<8>[4]");
    }

    #[test]
    fn shared_ctx_is_append_only_across_borrows() {
        let ctx = TyCtx::shared();
        let (a, bit8) = {
            let mut c = ctx.borrow_mut();
            let a = c.syms.intern("a");
            let bit8 = c.types.bit(8);
            (a, bit8)
        };
        {
            let mut c = ctx.borrow_mut();
            c.syms.intern("b");
            c.types.bit(16);
        }
        let c = ctx.borrow();
        assert_eq!(c.syms.resolve(a), "a");
        assert_eq!(c.types.kind(bit8), &Ty::Bit(8));
    }

    #[test]
    fn frozen_pool_is_shared_and_overlay_extends_it() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut root = TyPool::new();
        let f = syms.intern("f");
        let bit8 = root.bit(8);
        let rec = root.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        let frozen = Arc::new(root.freeze());

        let mut a = TyPool::with_base(Arc::clone(&frozen));
        let mut b = TyPool::with_base(Arc::clone(&frozen));
        // Frozen types (primitives included) keep their ids in overlays.
        assert_eq!(a.bit(8), bit8);
        assert_eq!(a.intern(Ty::Bool), TyId::BOOL);
        assert_eq!(b.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))])), rec);
        // New types are tier-tagged, densely indexed, and structurally
        // consistent within each overlay.
        let w16a = a.bit(16);
        let w16b = b.bit(16);
        assert!(w16a.is_overlay() && w16b.is_overlay());
        assert_eq!(w16a, w16b, "same overlay growth order, same id");
        assert_eq!(w16a.index(), frozen.len());
        assert_eq!(a.kind(w16a), &Ty::Bit(16));
        assert!(a.compatible(w16a, TyId::INT));
        assert_eq!(a.tier_sizes(), (frozen.len(), 1));
        let (hits, calls) = a.frozen_hit_stats();
        assert_eq!(calls, 3);
        assert_eq!(hits, 2, "bit8 and Bool were frozen hits");
    }

    #[test]
    fn overlay_compounds_over_frozen_children_dedup() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut root = TyPool::new();
        let f = syms.intern("f");
        let bit8 = root.bit(8);
        let frozen = Arc::new(root.freeze());
        let mut overlay = TyPool::with_base(frozen);
        // A compound built in the overlay from frozen children is interned
        // once and found again on re-interning.
        let r1 = overlay.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        let r2 = overlay.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        assert_eq!(r1, r2);
        assert!(r1.is_overlay());
        assert_eq!(overlay.tier_sizes().1, 1);
    }

    #[test]
    fn push_label_memoizes_compounds() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let f = syms.intern("f");
        let bit8 = pool.bit(8);
        let rec = pool.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        let t = SecTy::bottom(rec, &lat);

        let first = pool.push_label(t, lat.top(), &lat);
        assert_eq!(pool.push_cache_hits(), 0);
        let second = pool.push_label(t, lat.top(), &lat);
        assert_eq!(pool.push_cache_hits(), 1, "second push is a memo hit");
        assert_eq!(first.ty, second.ty, "cache hits return identical TyIds");
        assert_eq!(first, second);
        // The pushed field label is joined with ⊤.
        assert_eq!(pool.field(first.ty, f).unwrap().label, lat.top());
        // Pushing ⊥ is the identity and never touches the memo.
        assert_eq!(pool.push_label(t, lat.bottom(), &lat), t);
        assert_eq!(pool.push_cache_hits(), 1);
    }

    #[test]
    fn push_cache_survives_freezing() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut root = TyPool::new();
        let f = syms.intern("f");
        let bit8 = root.bit(8);
        let rec = root.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        let t = SecTy::bottom(rec, &lat);
        let warmed = root.push_label(t, lat.top(), &lat);
        let frozen = Arc::new(root.freeze());

        let mut overlay = TyPool::with_base(frozen);
        let via_overlay = overlay.push_label(t, lat.top(), &lat);
        assert_eq!(via_overlay, warmed, "frozen memo serves the overlay");
        assert_eq!(overlay.push_cache_hits(), 1);
        assert_eq!(overlay.tier_sizes().1, 0, "no overlay allocation at all");
    }

    #[test]
    #[should_panic(expected = "tiers do not stack")]
    fn freezing_an_overlay_panics() {
        let root = TyPool::new();
        let overlay = TyPool::with_base(Arc::new(root.freeze()));
        let _ = overlay.freeze();
    }

    #[test]
    fn push_memo_never_crosses_lattices() {
        // One pool serves programs under many lattices, and labels are
        // lattice-relative indices: the same (TyId, Label) pair denotes
        // different joins under different lattices. The memo must key on
        // the lattice too, or a chain-lattice warm-up would poison the
        // diamond-lattice result (soundness regression).
        let names = ["bot", "A", "B", "top"];
        let chain = Lattice::from_order(&names, &[("bot", "A"), ("A", "B"), ("B", "top")]).unwrap();
        let diamond =
            Lattice::from_order(&names, &[("bot", "A"), ("bot", "B"), ("A", "top"), ("B", "top")])
                .unwrap();
        let (a_c, b_c) = (chain.label("A").unwrap(), chain.label("B").unwrap());
        let (a_d, b_d) = (diamond.label("A").unwrap(), diamond.label("B").unwrap());
        // Same element names in the same order: the raw label indices
        // alias across the two lattices — exactly the dangerous case.
        assert_eq!(a_c, a_d);
        assert_eq!(b_c, b_d);

        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let f = syms.intern("f");
        let bit8 = pool.bit(8);
        let hdr = pool.header(FieldList::new(vec![(f, SecTy::new(bit8, a_c))]));
        let t = SecTy::new(hdr, chain.bottom());

        // Chain: A ⊔ B = B. Warm the memo under the chain lattice.
        let chained = pool.push_label(t, b_c, &chain);
        assert_eq!(pool.field(chained.ty, f).unwrap().label, b_c);
        // Diamond: A ⊔ B = ⊤ — the chain memo entry must not be reused.
        let diamonded = pool.push_label(t, b_d, &diamond);
        assert_eq!(pool.field(diamonded.ty, f).unwrap().label, diamond.top());
        // Both entries are now memoized under their own lattice.
        assert_eq!(pool.push_label(t, b_c, &chain), chained);
        assert_eq!(pool.push_label(t, b_d, &diamond), diamonded);
        assert_eq!(pool.push_cache_hits(), 2);
    }

    #[test]
    fn frozen_ctx_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenPool>();
        assert_send_sync::<FrozenTyCtx>();
        fn assert_send<T: Send>() {}
        assert_send::<CtxOverlay>();
        assert_send::<IdRemap>();
    }

    #[test]
    fn pool_thaw_preserves_ids_and_reopens_the_root_tier() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut root = TyPool::new();
        let f = syms.intern("f");
        let bit8 = root.bit(8);
        let rec = root.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        let frozen = root.freeze();
        let mut thawed = frozen.thaw();
        assert_eq!(thawed.len(), frozen.len());
        assert_eq!(thawed.bit(8), bit8, "thawed ids are the frozen ids");
        assert_eq!(thawed.record(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))])), rec);
        let bit16 = thawed.bit(16);
        assert!(!bit16.is_overlay(), "thawed pool is root tier");
        assert_eq!(bit16.index(), frozen.len(), "new ids continue the dense sequence");
        // And it freezes again.
        let refrozen = thawed.freeze();
        assert_eq!(refrozen.kind(bit16), &Ty::Bit(16));
    }

    #[test]
    fn refreeze_merges_overlays_and_preserves_frozen_ids() {
        let lat = Lattice::two_point();
        let mut root = TyCtx::new();
        let f = root.syms.intern("f");
        let bit8 = root.types.bit(8);
        let frozen = Arc::new(root.freeze());

        // Two workers intern the same program-local name and type.
        let mk = || {
            let mut ctx = TyCtx::with_base(&frozen);
            let g = ctx.syms.intern("g");
            let hdr = ctx.types.header(FieldList::new(vec![(g, SecTy::new(bit8, lat.top()))]));
            (ctx, g, hdr)
        };
        let (ctx_a, ga, ha) = mk();
        let (ctx_b, gb, hb) = mk();
        assert!(ga.is_overlay() && ha.is_overlay());

        let overlays = vec![ctx_a.into_overlay().unwrap(), ctx_b.into_overlay().unwrap()];
        assert_eq!(overlays[0].sizes(), (1, 1));
        let (refrozen, remaps) = frozen.refreeze(&overlays);

        // Old frozen ids are preserved verbatim.
        assert_eq!(refrozen.syms.lookup("f"), Some(f));
        assert_eq!(refrozen.types.kind(bit8), &Ty::Bit(8));
        assert_eq!(remaps[0].sym(f), f, "frozen symbols map to themselves");
        assert_eq!(remaps[0].ty(bit8), bit8, "frozen ids map to themselves");

        // Overlay entities merged once, now root-tier.
        let g_new = remaps[0].sym(ga);
        let h_new = remaps[0].ty(ha);
        assert!(!g_new.is_overlay() && !h_new.is_overlay());
        assert_eq!(remaps[1].sym(gb), g_new, "cross-overlay symbol dedup");
        assert_eq!(remaps[1].ty(hb), h_new, "cross-overlay type dedup");
        assert_eq!(refrozen.syms.resolve(g_new), "g");
        assert_eq!(refrozen.syms.len(), frozen.syms.len() + 1);
        assert_eq!(refrozen.types.len(), frozen.types.len() + 1);
        // The merged node's field is keyed by the *remapped* symbol.
        let field = refrozen.types.kind(h_new).field(g_new).expect("field survived remap");
        assert_eq!(field, SecTy::new(bit8, lat.top()));
        // Dense-index translation for Vec-backed side tables.
        assert_eq!(remaps[0].sym_index(f.index()), f.index());
        assert_eq!(remaps[0].sym_index(ga.index()), g_new.index());

        // A fresh overlay over the new root resolves the merged entities
        // without allocating.
        let mut worker = TyCtx::with_base(&Arc::new(refrozen));
        assert_eq!(worker.syms.intern("g"), g_new);
        assert_eq!(
            worker.types.header(FieldList::new(vec![(g_new, SecTy::new(bit8, lat.top()))])),
            h_new
        );
        assert_eq!(worker.types.tier_sizes().1, 0);
    }

    #[test]
    fn refreeze_remaps_nested_children_and_function_types() {
        let lat = Lattice::two_point();
        let root = TyCtx::new();
        let frozen = Arc::new(root.freeze());

        let mut ctx = TyCtx::with_base(&frozen);
        let x = ctx.syms.intern("x");
        let bit16 = ctx.types.bit(16); // overlay child
        let stack = ctx.types.stack(SecTy::bottom(bit16, &lat), 4); // overlay parent
        let fnid = ctx.types.function(FnTy {
            params: vec![FnParam {
                name: x,
                direction: Direction::In,
                ty: SecTy::bottom(stack, &lat),
                control_plane: false,
            }],
            pc_fn: lat.top(),
            ret: SecTy::unit(&lat),
            is_action: false,
        });

        let (refrozen, remaps) = frozen.refreeze(&[ctx.into_overlay().unwrap()]);
        let r = &remaps[0];
        let (bit16_n, stack_n, fn_n) = (r.ty(bit16), r.ty(stack), r.ty(fnid));
        assert_eq!(refrozen.types.kind(bit16_n), &Ty::Bit(16));
        assert_eq!(
            refrozen.types.kind(stack_n),
            &Ty::Stack(SecTy::bottom(bit16_n, &lat), 4),
            "stack element remapped to the new child id"
        );
        match refrozen.types.kind(fn_n) {
            Ty::Function(ft) => {
                assert_eq!(ft.params[0].name, r.sym(x));
                assert_eq!(ft.params[0].ty, SecTy::bottom(stack_n, &lat));
                assert_eq!(ft.pc_fn, lat.top());
            }
            other => panic!("expected function, got {other:?}"),
        }
        // The value-level helper agrees with the node-level remap.
        let ft = match refrozen.types.kind(fn_n) {
            Ty::Function(ft) => Arc::clone(ft),
            _ => unreachable!(),
        };
        assert_eq!(&r.fnty(&ft), &*ft, "already-remapped values are fixpoints");
    }

    #[test]
    fn refreeze_imports_the_push_memo() {
        let lat = Lattice::two_point();
        let mut root = TyCtx::new();
        let f = root.syms.intern("f");
        let bit8 = root.types.bit(8);
        let frozen = Arc::new(root.freeze());

        let mut ctx = TyCtx::with_base(&frozen);
        let hdr = ctx.types.header(FieldList::new(vec![(f, SecTy::bottom(bit8, &lat))]));
        let t = SecTy::bottom(hdr, &lat);
        let pushed = ctx.types.push_label(t, lat.top(), &lat);
        assert!(hdr.is_overlay() && pushed.ty.is_overlay());

        let (refrozen, remaps) = frozen.refreeze(&[ctx.into_overlay().unwrap()]);
        let hdr_n = remaps[0].ty(hdr);
        let pushed_n = remaps[0].ty(pushed.ty);

        let mut worker = TyPool::with_base(Arc::clone(&refrozen.types));
        let out = worker.push_label(SecTy::bottom(hdr_n, &lat), lat.top(), &lat);
        assert_eq!(out.ty, pushed_n, "refrozen memo serves fresh overlays");
        assert_eq!(worker.push_cache_hits(), 1);
        assert_eq!(worker.tier_sizes().1, 0, "no overlay allocation at all");
    }

    #[test]
    fn empty_overlay_refreezes_to_identity() {
        let root = TyCtx::new();
        let frozen = Arc::new(root.freeze());
        assert!(root_ctx_overlay_is_none(), "root-tier contexts have nothing to harvest");
        let ov = TyCtx::with_base(&frozen).into_overlay().unwrap();
        assert!(ov.is_empty());
        let (refrozen, remaps) = frozen.refreeze(&[ov]);
        assert!(remaps[0].is_identity());
        assert_eq!(refrozen.syms.len(), frozen.syms.len());
        assert_eq!(refrozen.types.len(), frozen.types.len());
    }

    fn root_ctx_overlay_is_none() -> bool {
        TyCtx::new().into_overlay().is_none()
    }

    #[test]
    fn ctx_with_base_keeps_sentinel_and_primitives() {
        let root = TyCtx::new();
        let frozen = Arc::new(root.freeze());
        let mut ctx = TyCtx::with_base(&frozen);
        assert_eq!(ctx.syms.lookup("").map(|s| s.index()), Some(0));
        assert_eq!(ctx.types.intern(Ty::Bool), TyId::BOOL);
        assert_eq!(ctx.types.kind(TyId::INT), &Ty::Int);
    }
}
