//! Abstract syntax for the security-annotated Core P4 fragment of P4BID.
//!
//! The P4BID paper (PLDI 2022) formalizes its information-flow control type
//! system over the fragment of Core P4 shown in its Figure 1, with security
//! types `⟨τ, χ⟩` (Figure 4) labeling every piece of data with an element of
//! a security lattice. This crate contains:
//!
//! * [`surface`] — the parser-facing AST: expressions, statements,
//!   declarations, control blocks, and *named* security annotations
//!   (`<bit<32>, high>`) exactly as written in the paper's listings;
//! * [`sectype`] — the resolved security types used by the typechecker and
//!   interpreter, with annotations resolved to [`p4bid_lattice::Label`]s and
//!   typedefs unfolded; types are hash-consed into a [`pool::TyPool`] and
//!   handled by copyable [`sectype::TyId`]s;
//! * [`pool`] — the hash-consing type pool and the shared
//!   interner-plus-pool context ([`pool::TyCtx`]);
//! * [`span`] — source spans and line/column rendering for diagnostics;
//! * [`pretty`] — a pretty-printer inverse to the parser;
//! * [`intern`] — string interning ([`intern::Symbol`]/[`intern::Interner`])
//!   backing the typechecker's `Vec`-indexed environments;
//! * [`fnv`] — the workspace's one 64-bit FNV-1a implementation, shared by
//!   the serve verdict cache, the directory scanner's content hash, and
//!   the flow-lineage structural trace keys (the unit tests pin its exact
//!   values).
//!
//! # Examples
//!
//! Building a tiny expression by hand:
//!
//! ```
//! use p4bid_ast::span::Span;
//! use p4bid_ast::surface::{Expr, ExprKind, BinOp};
//!
//! let sp = Span::dummy();
//! let one = Expr::new(ExprKind::Int { value: 1, width: Some(8) }, sp);
//! let x = Expr::var("x", sp);
//! let sum = Expr::new(ExprKind::Binary(BinOp::Add, Box::new(x), Box::new(one)), sp);
//! assert_eq!(p4bid_ast::pretty::expr_to_string(&sum), "x + 8w1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fnv;
pub mod intern;
pub mod pool;
pub mod pretty;
pub mod sectype;
pub mod span;
pub mod surface;

pub use intern::{Interner, Symbol};
pub use pool::{CtxOverlay, FrozenTyCtx, IdRemap, SharedTyCtx, TyCtx, TyPool};
pub use sectype::{SecTy, TyId};
pub use span::{Span, Spanned};
