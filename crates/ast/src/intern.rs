//! String interning for the checker hot path, in two tiers.
//!
//! Every identifier the typechecker touches — variable, action, table, and
//! type names, plus security-label names — is mapped once to a dense
//! [`Symbol`] id. Downstream tables (`p4bid_typeck`'s Γ and Δ) are then
//! plain `Vec`s indexed by the symbol, so the per-occurrence cost of a name
//! is one hash of the string on first sight and an array index ever after,
//! instead of a `String`-keyed hash-map probe (hash + allocation + full
//! string compare) at every lookup.
//!
//! An [`Interner`] is intentionally *not* shared across threads; what *is*
//! shared is an immutable [`FrozenInterner`] segment: a batch driver builds
//! one interner (the prelude names), [`freeze`](Interner::freeze)s it, and
//! hands the frozen segment to every worker via `Arc`. Each worker then
//! layers a private lock-free *overlay* on top
//! ([`Interner::with_base`]) for program-local names. Overlay symbols carry
//! the [`TIER_BIT`] in their raw encoding but
//! their [`index`](Symbol::index) continues where the frozen segment ends,
//! so indices stay globally dense and `Vec`-backed side tables work
//! unchanged across tiers.
//!
//! # Examples
//!
//! ```
//! use p4bid_ast::intern::Interner;
//! use std::sync::Arc;
//!
//! let mut syms = Interner::new();
//! let a = syms.intern("hdr");
//! let b = syms.intern("meta");
//! assert_ne!(a, b);
//! assert_eq!(syms.intern("hdr"), a, "interning is idempotent");
//! assert_eq!(syms.resolve(a), "hdr");
//! assert_eq!(syms.lookup("meta"), Some(b));
//! assert_eq!(syms.lookup("ghost"), None, "probing never allocates");
//!
//! // Freeze the segment and layer a per-worker overlay on top.
//! let frozen = Arc::new(syms.freeze());
//! let mut overlay = Interner::with_base(Arc::clone(&frozen));
//! assert_eq!(overlay.intern("hdr"), a, "frozen names keep their symbols");
//! let local = overlay.intern("worker_local");
//! assert!(local.is_overlay());
//! assert_eq!(local.index(), frozen.len(), "indices stay dense");
//! ```

use crate::sectype::TIER_BIT;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string: a dense index into an [`Interner`].
///
/// Symbols are plain `u32` indices and only meaningful relative to the
/// interner that produced them; they are `Copy`, comparable, and usable as
/// direct indices into `Vec`-backed side tables.
///
/// Bit 31 is the **tier bit** ([`TIER_BIT`]): clear for symbols interned in
/// the root/frozen tier, set for symbols interned in an overlay above a
/// frozen base. [`index`](Symbol::index) masks the bit out; overlay indices
/// continue after the frozen segment, so indices are globally dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of this symbol across both tiers of its interner
    /// (overlay indices continue after the frozen segment).
    #[must_use]
    pub fn index(self) -> usize {
        (self.0 & !TIER_BIT) as usize
    }

    /// Builds a symbol from a raw index. Intended for serialization round
    /// trips and sentinel values; resolving a fabricated symbol against an
    /// interner that never produced it panics.
    #[must_use]
    pub fn from_raw(ix: u32) -> Self {
        Symbol(ix)
    }

    /// Whether this symbol was interned in a per-worker overlay (tier bit
    /// set) rather than in the root/frozen tier.
    #[must_use]
    pub fn is_overlay(self) -> bool {
        self.0 & TIER_BIT != 0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}{}", self.index(), if self.is_overlay() { "+" } else { "" })
    }
}

/// An immutable, `Send + Sync` interner segment produced by
/// [`Interner::freeze`]. Shared across worker threads via `Arc`; workers
/// extend it through private [`Interner`] overlays.
#[derive(Debug)]
pub struct FrozenInterner {
    strings: Vec<Arc<str>>,
    map: HashMap<Arc<str>, Symbol>,
}

impl FrozenInterner {
    /// The symbol of `name`, if it is in the frozen segment.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The string a frozen symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not a frozen-tier symbol of this segment.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of strings in the frozen segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Thaws the frozen segment back into a mutable *root-tier* interner
    /// with every symbol preserved: the thawed interner resolves exactly
    /// the ids this segment handed out, and new strings continue the dense
    /// index sequence without a tier bit.
    ///
    /// This is the first half of a *refreeze* (see
    /// [`FrozenTyCtx::refreeze`](crate::pool::FrozenTyCtx::refreeze)):
    /// thaw, absorb per-worker overlay tables, freeze again into a fatter
    /// root. Cheap — `Arc<str>` backing means the tables clone by
    /// refcount, not by copying string bytes.
    #[must_use]
    pub fn thaw(&self) -> Interner {
        Interner {
            base: None,
            base_len: 0,
            strings: self.strings.clone(),
            map: self.map.clone(),
            frozen_hits: 0,
            intern_calls: 0,
        }
    }
}

/// A string interner: deduplicates strings into dense [`Symbol`] ids.
///
/// Optionally layered over a shared immutable [`FrozenInterner`] base
/// segment (see [`with_base`](Interner::with_base)): probes hit the frozen
/// map first and only new strings grow the private overlay. The `Arc<str>`
/// backing lets each name live once while being reachable both from the
/// id-ordered table (for [`resolve`](Interner::resolve)) and from the
/// lookup map, without unsafe code — and lets [`freeze`](Interner::freeze)
/// move the tables into a [`FrozenInterner`] without copying a byte.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// The shared immutable base segment, if any.
    base: Option<Arc<FrozenInterner>>,
    /// `base.len()`, cached (0 without a base).
    base_len: u32,
    /// Overlay strings; global index = `base_len + local index`.
    strings: Vec<Arc<str>>,
    map: HashMap<Arc<str>, Symbol>,
    /// `intern` calls answered by the frozen segment.
    frozen_hits: u64,
    /// Total `intern` calls.
    intern_calls: u64,
}

impl Interner {
    /// An empty root-tier interner (no frozen base; symbols carry no tier
    /// bit).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An interner layered over a frozen base segment: names already in
    /// the base resolve to their frozen symbols; new names go into a
    /// private overlay whose symbols carry the tier bit.
    #[must_use]
    pub fn with_base(base: Arc<FrozenInterner>) -> Self {
        let base_len = u32::try_from(base.len()).expect("frozen interner fits u32");
        Interner { base_len, base: Some(base), ..Self::default() }
    }

    /// Interns `name`, returning its symbol. Idempotent: the same string
    /// always maps to the same symbol (frozen-tier symbols win when the
    /// name is in the base segment).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX / 2` distinct strings are interned
    /// (unreachable for real programs).
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.intern_calls += 1;
        if let Some(base) = &self.base {
            if let Some(&sym) = base.map.get(name) {
                self.frozen_hits += 1;
                return sym;
            }
        }
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let local = u32::try_from(self.strings.len()).expect("interner overflow");
        let ix = self.base_len.checked_add(local).expect("interner overflow");
        assert!(ix < TIER_BIT, "interner overflow");
        let raw = if self.base.is_some() { ix | TIER_BIT } else { ix };
        let rc: Arc<str> = Arc::from(name);
        self.strings.push(Arc::clone(&rc));
        let sym = Symbol(raw);
        self.map.insert(rc, sym);
        sym
    }

    /// Read-only probe: the symbol of `name` if it was ever interned
    /// (in either tier).
    ///
    /// Used for occurrences that must not grow the table (e.g. a variable
    /// *use*: if the name was never interned, it was never declared).
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        if let Some(base) = &self.base {
            if let Some(&sym) = base.map.get(name) {
                return Some(sym);
            }
        }
        self.map.get(name).copied()
    }

    /// The string a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner and is out of range.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> &str {
        let ix = sym.index();
        match &self.base {
            Some(base) if ix < self.base_len as usize => base.resolve(sym),
            _ => &self.strings[ix - self.base_len as usize],
        }
    }

    /// Number of distinct interned strings across both tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base_len as usize + self.strings.len()
    }

    /// Whether nothing has been interned yet (in either tier).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes a root-tier interner into an immutable, shareable segment.
    /// Zero-copy: the string tables move, nothing is re-hashed.
    ///
    /// # Panics
    ///
    /// Panics if this interner is itself an overlay over a frozen base
    /// (tiers do not stack).
    #[must_use]
    pub fn freeze(self) -> FrozenInterner {
        assert!(self.base.is_none(), "cannot freeze an overlay interner (tiers do not stack)");
        FrozenInterner { strings: self.strings, map: self.map }
    }

    /// `(frozen segment size, overlay size)` of this interner.
    #[must_use]
    pub fn tier_sizes(&self) -> (usize, usize) {
        (self.base_len as usize, self.strings.len())
    }

    /// `(intern calls answered by the frozen segment, total intern calls)`
    /// since construction — the frozen-segment hit rate numerator and
    /// denominator.
    #[must_use]
    pub fn frozen_hit_stats(&self) -> (u64, u64) {
        (self.frozen_hits, self.intern_calls)
    }

    /// Decomposes an *overlay* interner into its overlay-tier strings in
    /// append (id) order — the table a refreeze re-interns into the new
    /// root. `None` for a root-tier interner (nothing to harvest: a root
    /// tier has no base to merge back into).
    #[must_use]
    pub fn into_overlay_strings(self) -> Option<Vec<Arc<str>>> {
        self.base.is_some().then_some(self.strings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_dense_and_stable() {
        let mut syms = Interner::new();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let c = syms.intern("c");
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        assert_eq!(syms.intern("b"), b);
        assert_eq!(syms.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut syms = Interner::new();
        for name in ["hdr", "meta", "tbl0", "NoAction"] {
            let s = syms.intern(name);
            assert_eq!(syms.resolve(s), name);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut syms = Interner::new();
        assert_eq!(syms.lookup("x"), None);
        assert!(syms.is_empty());
        let x = syms.intern("x");
        assert_eq!(syms.lookup("x"), Some(x));
        assert_eq!(syms.len(), 1);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut syms = Interner::new();
        let e = syms.intern("");
        assert_eq!(syms.resolve(e), "");
        assert_eq!(syms.lookup(""), Some(e));
    }

    #[test]
    fn display_shows_the_index() {
        let mut syms = Interner::new();
        let s = syms.intern("x");
        assert_eq!(s.to_string(), "sym#0");
    }

    #[test]
    fn root_tier_symbols_carry_no_tier_bit() {
        let mut syms = Interner::new();
        let s = syms.intern("x");
        assert!(!s.is_overlay());
    }

    #[test]
    fn frozen_segment_is_shared_and_overlay_extends_it() {
        let mut root = Interner::new();
        let hdr = root.intern("hdr");
        let meta = root.intern("meta");
        let frozen = Arc::new(root.freeze());
        assert_eq!(frozen.len(), 2);
        assert_eq!(frozen.lookup("hdr"), Some(hdr));
        assert_eq!(frozen.resolve(meta), "meta");

        let mut a = Interner::with_base(Arc::clone(&frozen));
        let mut b = Interner::with_base(Arc::clone(&frozen));
        // Frozen names keep their symbols in every overlay.
        assert_eq!(a.intern("hdr"), hdr);
        assert_eq!(b.lookup("meta"), Some(meta));
        // Overlay names are tier-tagged and densely indexed per overlay.
        let xa = a.intern("x");
        let xb = b.intern("x");
        assert!(xa.is_overlay() && xb.is_overlay());
        assert_eq!(xa, xb, "same overlay growth order, same symbol");
        assert_eq!(xa.index(), frozen.len());
        assert_eq!(a.resolve(xa), "x");
        assert_eq!(a.len(), 3);
        assert_eq!(a.tier_sizes(), (2, 1));
    }

    #[test]
    fn overlay_hit_stats_count_frozen_probes() {
        let mut root = Interner::new();
        root.intern("shared");
        let frozen = Arc::new(root.freeze());
        let mut overlay = Interner::with_base(frozen);
        overlay.intern("shared");
        overlay.intern("local");
        overlay.intern("shared");
        overlay.intern("local");
        let (hits, calls) = overlay.frozen_hit_stats();
        assert_eq!((hits, calls), (2, 4));
    }

    #[test]
    fn overlay_display_is_tagged() {
        let mut root = Interner::new();
        root.intern("a");
        let mut overlay = Interner::with_base(Arc::new(root.freeze()));
        let s = overlay.intern("b");
        assert_eq!(s.to_string(), "sym#1+");
    }

    #[test]
    #[should_panic(expected = "tiers do not stack")]
    fn freezing_an_overlay_panics() {
        let root = Interner::new();
        let overlay = Interner::with_base(Arc::new(root.freeze()));
        let _ = overlay.freeze();
    }

    #[test]
    fn thaw_preserves_symbols_and_reopens_the_root_tier() {
        let mut root = Interner::new();
        let a = root.intern("a");
        let b = root.intern("b");
        let frozen = root.freeze();
        let mut thawed = frozen.thaw();
        assert_eq!(thawed.len(), 2);
        assert_eq!(thawed.intern("a"), a, "thawed ids are the frozen ids");
        assert_eq!(thawed.resolve(b), "b");
        let c = thawed.intern("c");
        assert!(!c.is_overlay(), "thawed interner is root tier");
        assert_eq!(c.index(), 2, "new strings continue the dense sequence");
        // And it can be frozen again.
        let refrozen = thawed.freeze();
        assert_eq!(refrozen.len(), 3);
        assert_eq!(refrozen.lookup("c"), Some(c));
    }

    #[test]
    fn into_overlay_strings_harvests_only_overlays() {
        let mut root = Interner::new();
        root.intern("shared");
        assert!(root.clone().into_overlay_strings().is_none(), "root tier has no overlay");
        let frozen = Arc::new(root.freeze());
        let mut overlay = Interner::with_base(frozen);
        overlay.intern("shared");
        overlay.intern("x");
        overlay.intern("y");
        let strings = overlay.into_overlay_strings().unwrap();
        let names: Vec<&str> = strings.iter().map(|s| &**s).collect();
        assert_eq!(names, ["x", "y"], "append order, frozen hits excluded");
    }

    #[test]
    fn frozen_interner_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenInterner>();
    }
}
