//! String interning for the checker hot path.
//!
//! Every identifier the typechecker touches — variable, action, table, and
//! type names, plus security-label names — is mapped once to a dense
//! [`Symbol`] id. Downstream tables ([`p4bid_typeck`]'s Γ and Δ) are then
//! plain `Vec`s indexed by the symbol, so the per-occurrence cost of a name
//! is one hash of the string on first sight and an array index ever after,
//! instead of a `String`-keyed hash-map probe (hash + allocation + full
//! string compare) at every lookup.
//!
//! An [`Interner`] is intentionally *not* shared across threads: a batch
//! driver gives each worker its own checker session (and thus its own
//! interner), which keeps the structure lock-free.
//!
//! # Examples
//!
//! ```
//! use p4bid_ast::intern::Interner;
//!
//! let mut syms = Interner::new();
//! let a = syms.intern("hdr");
//! let b = syms.intern("meta");
//! assert_ne!(a, b);
//! assert_eq!(syms.intern("hdr"), a, "interning is idempotent");
//! assert_eq!(syms.resolve(a), "hdr");
//! assert_eq!(syms.lookup("meta"), Some(b));
//! assert_eq!(syms.lookup("ghost"), None, "probing never allocates");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// An interned string: a dense index into an [`Interner`].
///
/// Symbols are plain `u32` indices and only meaningful relative to the
/// interner that produced them; they are `Copy`, comparable, and usable as
/// direct indices into `Vec`-backed side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol inside its interner.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a symbol from a raw index. Intended for serialization round
    /// trips and sentinel values; resolving a fabricated symbol against an
    /// interner that never produced it panics.
    #[must_use]
    pub fn from_raw(ix: u32) -> Self {
        Symbol(ix)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A string interner: deduplicates strings into dense [`Symbol`] ids.
///
/// The `Rc<str>` backing lets the name live once while being reachable both
/// from the id-ordered table (for [`resolve`](Interner::resolve)) and from
/// the lookup map, without unsafe code.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<Rc<str>>,
    map: HashMap<Rc<str>, Symbol>,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent: the same string
    /// always maps to the same symbol.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct strings are interned
    /// (unreachable for real programs).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        let rc: Rc<str> = Rc::from(name);
        self.strings.push(Rc::clone(&rc));
        let sym = Symbol(id);
        self.map.insert(rc, sym);
        sym
    }

    /// Read-only probe: the symbol of `name` if it was ever interned.
    ///
    /// Used for occurrences that must not grow the table (e.g. a variable
    /// *use*: if the name was never interned, it was never declared).
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The string a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner and is out of range.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_dense_and_stable() {
        let mut syms = Interner::new();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let c = syms.intern("c");
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        assert_eq!(syms.intern("b"), b);
        assert_eq!(syms.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut syms = Interner::new();
        for name in ["hdr", "meta", "tbl0", "NoAction"] {
            let s = syms.intern(name);
            assert_eq!(syms.resolve(s), name);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut syms = Interner::new();
        assert_eq!(syms.lookup("x"), None);
        assert!(syms.is_empty());
        let x = syms.intern("x");
        assert_eq!(syms.lookup("x"), Some(x));
        assert_eq!(syms.len(), 1);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut syms = Interner::new();
        let e = syms.intern("");
        assert_eq!(syms.resolve(e), "");
        assert_eq!(syms.lookup(""), Some(e));
    }

    #[test]
    fn display_shows_the_index() {
        let mut syms = Interner::new();
        let s = syms.intern("x");
        assert_eq!(s.to_string(), "sym#0");
    }
}
