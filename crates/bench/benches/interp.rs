//! **Substrate benchmark F-extra-3** (DESIGN.md): interpreter and
//! NI-harness throughput.
//!
//! Measures packets/second through the Topology forwarding pipeline and
//! the D2R BFS pipeline (the two most table-heavy corpus programs), plus
//! the cost of one paired non-interference trial. These numbers bound how
//! many NI trials the soundness fuzzer can afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p4bid::interp::{run_control, Value};
use p4bid::ni::{check_non_interference, NiConfig};
use p4bid::{check, CheckOptions, TypedProgram};

fn b(width: u16, v: u128) -> Value {
    Value::bit(width, v)
}

fn topology_packet(t: &TypedProgram) -> Vec<Value> {
    let sy = |n: &str| t.intern(n);
    let ipv4 = Value::Header {
        valid: true,
        fields: vec![
            (sy("ttl"), b(8, 64)),
            (sy("protocol"), b(8, 6)),
            (sy("srcAddr"), b(32, 0xC0A8_0001)),
            (sy("dstAddr"), b(32, 0x0A00_0001)),
        ],
    };
    let eth = Value::Header {
        valid: true,
        fields: vec![(sy("srcAddr"), b(48, 0x1111)), (sy("dstAddr"), b(48, 0x2222))],
    };
    let local = Value::Header {
        valid: true,
        fields: vec![
            (sy("phys_dstAddr"), b(32, 0)),
            (sy("phys_ttl"), b(8, 0)),
            (sy("next_hop_MAC_addr"), b(48, 0)),
        ],
    };
    let hdr = Value::Record(vec![(sy("ipv4"), ipv4), (sy("eth"), eth), (sy("local_hdr"), local)]);
    vec![hdr, std_meta(t)]
}

fn std_meta(t: &TypedProgram) -> Value {
    let sy = |n: &str| t.intern(n);
    Value::Record(vec![
        (sy("ingress_port"), b(9, 1)),
        (sy("egress_spec"), b(9, 0)),
        (sy("egress_port"), b(9, 0)),
        (sy("instance_type"), b(32, 0)),
        (sy("packet_length"), b(32, 128)),
        (sy("priority"), b(3, 0)),
    ])
}

fn typed(src: &str) -> TypedProgram {
    check(src, &CheckOptions::ifc()).expect("corpus typechecks")
}

fn bench_interp(c: &mut Criterion) {
    let topo = typed(p4bid::corpus::TOPOLOGY.secure);
    let topo_cp = p4bid::corpus::demo_control_plane("Topology");
    let packet = topology_packet(&topo);

    let mut group = c.benchmark_group("interp");
    group.throughput(Throughput::Elements(1));
    group.bench_function("topology_packet", |bch| {
        bch.iter(|| {
            run_control(&topo, &topo_cp, "Obfuscate_Ingress", packet.clone()).expect("runs")
        });
    });

    let d2r = typed(p4bid::corpus::D2R.secure);
    let sy = |n: &str| d2r.intern(n);
    let d2r_cp = p4bid::corpus::demo_control_plane("D2R");
    let bfs = Value::Header {
        valid: true,
        fields: vec![
            (sy("curr"), b(32, 1)),
            (sy("next_node"), b(32, 3)),
            (sy("tried_links"), b(32, 0)),
            (sy("num_hops"), b(32, 0)),
        ],
    };
    let ipv4 = Value::Header {
        valid: true,
        fields: vec![
            (sy("priority"), b(3, 0)),
            (sy("ttl"), b(8, 64)),
            (sy("srcAddr"), b(32, 1)),
            (sy("dstAddr"), b(32, 3)),
        ],
    };
    let d2r_packet =
        vec![Value::Record(vec![(sy("bfs"), bfs), (sy("ipv4"), ipv4)]), std_meta(&d2r)];
    group.bench_function("d2r_bfs_packet", |bch| {
        bch.iter(|| run_control(&d2r, &d2r_cp, "D2R_Ingress", d2r_packet.clone()).expect("runs"));
    });
    group.finish();

    let mut ni_group = c.benchmark_group("ni_harness");
    ni_group.throughput(Throughput::Elements(10));
    ni_group.bench_function("topology_10_pairs", |bch| {
        let cfg = NiConfig::default().with_runs(10);
        bch.iter(|| {
            let out = check_non_interference(&topo, &topo_cp, "Obfuscate_Ingress", &cfg);
            assert!(out.holds());
        });
    });
    ni_group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
