//! **Substrate benchmark F-extra-3** (DESIGN.md): interpreter and
//! NI-harness throughput.
//!
//! Measures packets/second through the Topology forwarding pipeline and
//! the D2R BFS pipeline (the two most table-heavy corpus programs), plus
//! the cost of one paired non-interference trial. These numbers bound how
//! many NI trials the soundness fuzzer can afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p4bid::interp::{run_control, Value};
use p4bid::ni::{check_non_interference, NiConfig};
use p4bid::{check, CheckOptions, TypedProgram};

fn b(width: u16, v: u128) -> Value {
    Value::bit(width, v)
}

fn topology_packet() -> Vec<Value> {
    let ipv4 = Value::Header {
        valid: true,
        fields: vec![
            ("ttl".into(), b(8, 64)),
            ("protocol".into(), b(8, 6)),
            ("srcAddr".into(), b(32, 0xC0A8_0001)),
            ("dstAddr".into(), b(32, 0x0A00_0001)),
        ],
    };
    let eth = Value::Header {
        valid: true,
        fields: vec![("srcAddr".into(), b(48, 0x1111)), ("dstAddr".into(), b(48, 0x2222))],
    };
    let local = Value::Header {
        valid: true,
        fields: vec![
            ("phys_dstAddr".into(), b(32, 0)),
            ("phys_ttl".into(), b(8, 0)),
            ("next_hop_MAC_addr".into(), b(48, 0)),
        ],
    };
    let hdr = Value::Record(vec![
        ("ipv4".into(), ipv4),
        ("eth".into(), eth),
        ("local_hdr".into(), local),
    ]);
    vec![hdr, std_meta()]
}

fn std_meta() -> Value {
    Value::Record(vec![
        ("ingress_port".into(), b(9, 1)),
        ("egress_spec".into(), b(9, 0)),
        ("egress_port".into(), b(9, 0)),
        ("instance_type".into(), b(32, 0)),
        ("packet_length".into(), b(32, 128)),
        ("priority".into(), b(3, 0)),
    ])
}

fn typed(src: &str) -> TypedProgram {
    check(src, &CheckOptions::ifc()).expect("corpus typechecks")
}

fn bench_interp(c: &mut Criterion) {
    let topo = typed(p4bid::corpus::TOPOLOGY.secure);
    let topo_cp = p4bid::corpus::demo_control_plane("Topology");
    let packet = topology_packet();

    let mut group = c.benchmark_group("interp");
    group.throughput(Throughput::Elements(1));
    group.bench_function("topology_packet", |bch| {
        bch.iter(|| {
            run_control(&topo, &topo_cp, "Obfuscate_Ingress", packet.clone()).expect("runs")
        });
    });

    let d2r = typed(p4bid::corpus::D2R.secure);
    let d2r_cp = p4bid::corpus::demo_control_plane("D2R");
    let bfs = Value::Header {
        valid: true,
        fields: vec![
            ("curr".into(), b(32, 1)),
            ("next_node".into(), b(32, 3)),
            ("tried_links".into(), b(32, 0)),
            ("num_hops".into(), b(32, 0)),
        ],
    };
    let ipv4 = Value::Header {
        valid: true,
        fields: vec![
            ("priority".into(), b(3, 0)),
            ("ttl".into(), b(8, 64)),
            ("srcAddr".into(), b(32, 1)),
            ("dstAddr".into(), b(32, 3)),
        ],
    };
    let d2r_packet =
        vec![Value::Record(vec![("bfs".into(), bfs), ("ipv4".into(), ipv4)]), std_meta()];
    group.bench_function("d2r_bfs_packet", |bch| {
        bch.iter(|| run_control(&d2r, &d2r_cp, "D2R_Ingress", d2r_packet.clone()).expect("runs"));
    });
    group.finish();

    let mut ni_group = c.benchmark_group("ni_harness");
    ni_group.throughput(Throughput::Elements(10));
    ni_group.bench_function("topology_10_pairs", |bch| {
        let cfg = NiConfig::default().with_runs(10);
        bch.iter(|| {
            let out = check_non_interference(&topo, &topo_cp, "Obfuscate_Ingress", &cfg);
            assert!(out.holds());
        });
    });
    ni_group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
