//! Checker hot-path bench: the costs the hash-consed type pool targets.
//!
//! Measures (a) one-shot [`check`] vs a pooled [`CheckerSession`] on the
//! synthetic batch program (every session since the `TyPool` refactor
//! shares one interner + type pool across checks), (b) checking a
//! wide-header program whose field lookups go through the sorted-by-symbol
//! layout, and (c) the raw τ-equality check (`same_shape`) on deep pooled
//! types — an id comparison on the fast path.
//!
//! Run with `cargo bench -p p4bid-bench --bench typeck_hot`. Set
//! `P4BID_BENCH_JSON=path` to also write a machine-readable summary (the
//! `BENCH_typeck.json` baseline in the repo root; CI uploads it as an
//! artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use p4bid::ast::{FieldList, SecTy, TyCtx};
use p4bid::lattice::Lattice;
use p4bid::synth::synth_program;
use p4bid::{check, CheckOptions, CheckerSession};
use std::fmt::Write as _;
use std::time::Instant;

/// A program with one wide (32-field) header and a body that reads and
/// writes every field — the field-lookup stress case.
fn wide_header_program() -> String {
    let mut src = String::from("header wide_t {\n");
    for i in 0..32 {
        let _ = writeln!(src, "    bit<16> f{i:02};");
    }
    src.push_str("}\ncontrol C(inout wide_t w) {\n    apply {\n");
    for i in 0..32 {
        let _ = writeln!(src, "        w.f{i:02} = w.f{:02} + 16w1;", (i + 13) % 32);
    }
    src.push_str("    }\n}\n");
    src
}

/// Builds a deep nested record type in a fresh pool, twice, and returns
/// the context plus both (hash-consed, thus equal) handles.
fn deep_types() -> (TyCtx, SecTy, SecTy, SecTy) {
    let lat = Lattice::diamond();
    let mut ctx = TyCtx::new();
    let build = |ctx: &mut TyCtx, widths: &[u16]| {
        let mut cur = SecTy::bottom(ctx.types.bit(widths[0]), &lat);
        for (depth, &w) in widths.iter().enumerate().skip(1) {
            let fields: Vec<_> = (0..6)
                .map(|i| {
                    let name = ctx.syms.intern(&format!("d{depth}_f{i}"));
                    let leaf = SecTy::bottom(ctx.types.bit(w), &lat);
                    (name, if i == 0 { cur } else { leaf })
                })
                .collect();
            cur = SecTy::bottom(ctx.types.record(FieldList::new(fields)), &lat);
        }
        cur
    };
    let a = build(&mut ctx, &[8, 16, 32, 48, 64]);
    let b = build(&mut ctx, &[8, 16, 32, 48, 64]);
    let c = build(&mut ctx, &[8, 16, 32, 48, 9]);
    (ctx, a, b, c)
}

fn bench_typeck_hot(c: &mut Criterion) {
    let mut group = c.benchmark_group("typeck_hot");

    let program = synth_program(8, true);
    group.bench_function("one_shot", |b| {
        b.iter(|| check(&program, &CheckOptions::ifc()).expect("accepts"));
    });
    group.bench_function("session", |b| {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        b.iter(|| session.check(&program).expect("accepts"));
    });

    let wide = wide_header_program();
    group.bench_function("wide_header_session", |b| {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        b.iter(|| session.check(&wide).expect("accepts"));
    });

    let (ctx, a, b_ty, c_ty) = deep_types();
    assert_eq!(a, b_ty, "hash-consing: equal deep types share an id");
    assert_ne!(a, c_ty);
    group.bench_function("same_shape_deep", |bch| {
        bch.iter(|| {
            let eq = ctx.types.same_shape(a, b_ty);
            let ne = ctx.types.same_shape(a, c_ty);
            assert!(eq && !ne);
            (eq, ne)
        });
    });
    group.finish();

    summary_json(&program, &wide);
}

/// Self-timed summary for the JSON artifact.
fn summary_json(program: &str, wide: &str) {
    let time_ms = |f: &mut dyn FnMut()| p4bid_bench::time_ms_best_of(3, 50, f);

    let opts = CheckOptions::ifc();
    let one_shot_ms = time_ms(&mut || {
        check(program, &opts).expect("accepts");
    });
    let mut session = CheckerSession::new(opts.clone());
    let session_ms = time_ms(&mut || {
        session.check(program).expect("accepts");
    });
    let mut wide_session = CheckerSession::new(opts.clone());
    let wide_ms = time_ms(&mut || {
        wide_session.check(wide).expect("accepts");
    });

    let (ctx, a, b, c) = deep_types();
    let iters = 2_000_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        assert!(ctx.types.same_shape(a, b));
        assert!(!ctx.types.same_shape(a, c));
    }
    let same_shape_ns = start.elapsed().as_secs_f64() * 1e9 / f64::from(iters) / 2.0;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"p4bid-bench-typeck/1\",");
    let _ = writeln!(json, "  \"one_shot_check_ms\": {one_shot_ms:.4},");
    let _ = writeln!(json, "  \"session_check_ms\": {session_ms:.4},");
    let _ = writeln!(json, "  \"session_speedup\": {:.2},", one_shot_ms / session_ms.max(1e-9));
    let _ = writeln!(json, "  \"wide_header_session_ms\": {wide_ms:.4},");
    let _ = writeln!(json, "  \"same_shape_deep_ns\": {same_shape_ns:.2}");
    json.push_str("}\n");

    match std::env::var("P4BID_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write bench JSON");
            println!("wrote typeck bench summary to {path}");
        }
        _ => println!("\n{json}"),
    }
}

criterion_group!(benches, bench_typeck_hot);
criterion_main!(benches);
