//! **Table 1** of the paper: typechecking time in milliseconds for the
//! five case-study programs, comparing the unannotated program under the
//! baseline (p4c-analog) checker with the annotated program under P4BID.
//!
//! The paper reports ~5 % (≈30 ms on p4c's ~550 ms) average overhead; the
//! expected *shape* here is the same — IFC checking costs a small constant
//! factor over the baseline — while absolute numbers differ because the
//! substrate is this workspace's front end, not p4c.
//!
//! Run with `cargo bench -p p4bid-bench --bench table1`. A paper-style
//! table is printed at the end of the run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p4bid::report::{measure_table1, render_table1, unannotated_source};
use p4bid::{check, CheckOptions};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    for cs in p4bid::corpus::case_studies() {
        if cs.name == "NetChain" {
            continue; // Table 1 has exactly the five paper rows.
        }
        let plain = unannotated_source(&cs);
        group.bench_with_input(BenchmarkId::new("unannotated_base", cs.name), &plain, |b, src| {
            b.iter(|| check(src, &CheckOptions::base()).expect("baseline accepts"));
        });
        group.bench_with_input(
            BenchmarkId::new("annotated_p4bid", cs.name),
            &cs.secure,
            |b, src| {
                b.iter(|| check(src, &CheckOptions::ifc()).expect("P4BID accepts"));
            },
        );
    }
    group.finish();

    // Paper-style summary table.
    println!("\n{}", render_table1(&measure_table1(30)));
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
