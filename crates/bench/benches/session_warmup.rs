//! Session warm-up bench: the fixed cost the shared frozen core removes.
//!
//! Measures (a) a *cold* session build — [`CheckerSession::new`] plus the
//! default-lattice prelude check every first `check` call would trigger —
//! against (b) a [`SharedSessionCore::session`] clone, which starts fully
//! warm off the frozen segment; plus (c) the one-time cost of freezing a
//! core, amortized across every worker that clones it. The acceptance bar
//! for the two-tier refactor is clone ≥ 10× cheaper than cold build.
//!
//! Run with `cargo bench -p p4bid-bench --bench session_warmup`. Set
//! `P4BID_BENCH_JSON=path` to also write a machine-readable summary (the
//! `BENCH_warmup.json` baseline in the repo root; CI uploads it as an
//! artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use p4bid::{CheckOptions, CheckerSession, SharedSessionCore};
use std::fmt::Write as _;

fn bench_session_warmup(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_warmup");

    group.bench_function("cold_session_build", |b| {
        b.iter(|| {
            let mut session = CheckerSession::new(CheckOptions::ifc());
            session.warm();
            session
        });
    });

    let core = SharedSessionCore::new(CheckOptions::ifc());
    group.bench_function("shared_core_clone", |b| {
        b.iter(|| core.session());
    });

    group.bench_function("core_freeze", |b| {
        b.iter(|| SharedSessionCore::new(CheckOptions::ifc()));
    });

    group.finish();
    summary_json();
}

/// Self-timed summary for the JSON artifact: microseconds per cold build
/// vs per shared-core clone, and the resulting speedup.
fn summary_json() {
    let time_us = |f: &mut dyn FnMut()| p4bid_bench::time_ms_best_of(5, 200, f) * 1e3;

    let cold_us = time_us(&mut || {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        session.warm();
        std::hint::black_box(&session);
    });
    let core = SharedSessionCore::new(CheckOptions::ifc());
    let clone_us = time_us(&mut || {
        std::hint::black_box(core.session());
    });
    let freeze_us = time_us(&mut || {
        std::hint::black_box(SharedSessionCore::new(CheckOptions::ifc()));
    });

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"p4bid-bench-warmup/1\",");
    let _ = writeln!(json, "  \"cold_session_build_us\": {cold_us:.3},");
    let _ = writeln!(json, "  \"shared_core_clone_us\": {clone_us:.3},");
    let _ = writeln!(json, "  \"core_freeze_us\": {freeze_us:.3},");
    let _ = writeln!(json, "  \"warmup_speedup\": {:.1}", cold_us / clone_us.max(1e-9));
    json.push_str("}\n");

    match std::env::var("P4BID_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write bench JSON");
            println!("wrote session_warmup bench summary to {path}");
        }
        _ => println!("\n{json}"),
    }
}

criterion_group!(benches, bench_session_warmup);
criterion_main!(benches);
