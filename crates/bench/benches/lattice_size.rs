//! **Ablation F-extra-2** (DESIGN.md): IFC checking time vs lattice size.
//!
//! The type system is parametric in the lattice (§4.2); the paper ships a
//! 2-point and a 4-point lattice and conjectures richer per-tenant
//! lattices (§5.4, "the same idea can be directly generalized to more
//! parties"). This sweep checks the same program under chain lattices of
//! 2..=64 levels and under growing diamond-like tenant lattices.
//!
//! Expected shape: near-flat — lattice operations are O(1) table lookups,
//! so checking time should be insensitive to lattice size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p4bid::lattice::Lattice;
use p4bid::synth::synth_program;
use p4bid::{check, CheckOptions};

/// A tenant lattice: ⊥ < t0, …, t{k-1} < ⊤ (the §5.4 generalization).
fn tenant_lattice(k: usize) -> Lattice {
    let mut names = vec!["low".to_string(), "high".to_string()];
    let mut order = Vec::new();
    for i in 0..k {
        let t = format!("t{i}");
        order.push(("low".to_string(), t.clone()));
        order.push((t.clone(), "high".to_string()));
        names.push(t);
    }
    if k == 0 {
        order.push(("low".to_string(), "high".to_string()));
    }
    Lattice::from_order(&names, &order).expect("tenant lattices are well-formed")
}

fn bench_lattice_size(c: &mut Criterion) {
    // The program uses only `low`/`high`, so it checks under every lattice
    // that contains those two names.
    let program = synth_program(16, true);

    let mut group = c.benchmark_group("lattice_size");
    for k in [2usize, 4, 8, 16, 32, 64] {
        let mut names = vec!["low".to_string()];
        for i in 1..k - 1 {
            names.push(format!("mid{i}"));
        }
        names.push("high".to_string());
        let order: Vec<(String, String)> =
            names.windows(2).map(|w| (w[0].clone(), w[1].clone())).collect();
        let lattice = Lattice::from_order(&names, &order).expect("chains are lattices");
        group.bench_with_input(BenchmarkId::new("chain", k), &lattice, |b, lat| {
            let opts = CheckOptions::ifc().with_lattice(lat.clone());
            b.iter(|| check(&program, &opts).expect("accepts"));
        });
    }
    for tenants in [2usize, 8, 32] {
        let lattice = tenant_lattice(tenants);
        group.bench_with_input(BenchmarkId::new("tenants", tenants), &lattice, |b, lat| {
            let opts = CheckOptions::ifc().with_lattice(lat.clone());
            b.iter(|| check(&program, &opts).expect("accepts"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lattice_size);
criterion_main!(benches);
