//! Serve-latency bench: request-to-report time against a warm core.
//!
//! The streaming ingest service (`p4bid serve`) answers each epoch off a
//! long-lived [`SharedSessionCore`], so its latency floor is "parse one
//! request + check it through a warm overlay session + render the epoch
//! report". This bench measures that floor for a single request (the
//! interactive tail-latency case), a 64-program epoch (the scan-tick
//! case), the poll-based directory scanner's no-change tick (the idle
//! cost of `p4bid watch`), and the incremental path: a 64-item program
//! resubmitted after an edit to its final item only, answered off the
//! warm prefix-snapshot tree (`edit_last_item`).
//!
//! Run with `cargo bench -p p4bid-bench --bench serve_latency`. Set
//! `P4BID_BENCH_JSON=path` to also write a machine-readable summary (the
//! `BENCH_serve.json` baseline in the repo root; CI uploads it as an
//! artifact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p4bid::batch::synthetic_corpus;
use p4bid::serve::{parse_request, DirScanner, ServeEngine};
use p4bid::{CheckOptions, SharedSessionCore};
use std::fmt::Write as _;

const EPOCH: usize = 64;

/// Top-level items in the incremental-recheck program: shared types plus
/// one-statement controls, the shape `edit_last_item` mutates.
const ITEMS: usize = 64;

/// A program of [`ITEMS`] top-level items — a header, a struct, and 62
/// controls of a dozen statements each — with `tweak` folded into the
/// *final* control's body only. Editing the tail leaves a 63-item shared
/// prefix, the case the snapshot tree turns into a one-item re-check;
/// the bodies are big enough that type checking (per statement)
/// dominates lexing (per byte), as in real programs.
fn many_item_program(tweak: u32) -> String {
    let body = |src: &mut String, field: &str, salt: u32| {
        for j in 0..12 {
            let _ = writeln!(src, "        h.f.{field} = (h.f.{field} + 32w{j}) ^ 32w{salt};");
        }
    };
    let mut src = String::from(
        "header it_t { <bit<32>, high> sec; <bit<32>, low> pub; }\nstruct ih { it_t f; }\n",
    );
    for i in 0..ITEMS - 3 {
        let _ = writeln!(src, "control C{i}(inout ih h) {{\n    apply {{");
        body(&mut src, "pub", i as u32);
        src.push_str("    }\n}\n");
    }
    src.push_str("control Tail(inout ih h) {\n    apply {\n");
    body(&mut src, "sec", tweak);
    src.push_str("    }\n}\n");
    src
}

/// Pre-built last-item edits of the 64-item program, cycled by the
/// incremental benches so the timed loop measures the re-check, not
/// 40 KB of string synthesis. Resumed checks never extend the snapshot
/// tree, so revisiting a variant stays a 63-item resume + one-item
/// re-check — a genuine edit — every time.
fn edit_pool() -> Vec<p4bid::batch::BatchInput> {
    (1..=32u32).map(|t| p4bid::batch::BatchInput::new("edit", many_item_program(t))).collect()
}

/// A core warmed for incremental re-checking: one cold check harvests the
/// program's names into a refreeze (so they land in the frozen interner
/// tier), and a second check — now tier-pure — populates the prefix
/// snapshot tree. Exactly what `p4bid serve --refresh-every N` converges
/// to in steady state.
fn warm_snapshot_core() -> SharedSessionCore {
    let core = SharedSessionCore::new(CheckOptions::ifc());
    let mut session = core.session();
    let _ = session.check(&many_item_program(0));
    let harvest = session.into_harvest().expect("core sessions harvest");
    let core = core.refreeze(vec![harvest]);
    let mut session = core.session();
    let _ = session.check(&many_item_program(0));
    core
}

/// One inline request as the feed would carry it.
fn request_line() -> String {
    let source = p4bid::synth::synth_program(4, true)
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\t', "\\t");
    format!("{{\"id\": \"req-0\", \"source\": \"{source}\"}}")
}

/// A scratch directory of `n` corpus files for the scanner benches. The
/// mtimes are aged past the scanner's racy window so the unchanged-tick
/// bench measures the steady-state stat-only fast path, not the
/// recently-modified re-hash path.
fn scan_dir(n: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("p4bid-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let aged = std::time::SystemTime::now() - std::time::Duration::from_secs(60);
    for input in synthetic_corpus(n) {
        let path = dir.join(format!("{}.p4", input.name));
        std::fs::write(&path, &input.source).expect("write");
        let f = std::fs::File::options().append(true).open(&path).expect("open");
        f.set_modified(aged).expect("age mtime");
    }
    dir
}

fn bench_serve_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_latency");

    // Request-to-report: parse the feed line, check it on a warm engine,
    // render the epoch document — everything but the I/O.
    let core = SharedSessionCore::new(CheckOptions::ifc());
    let line = request_line();
    group.bench_with_input(BenchmarkId::new("request_to_report", "single"), &line, |b, line| {
        let mut engine = ServeEngine::with_core(core.clone(), 1);
        b.iter(|| {
            let req = parse_request(line).expect("parses");
            let input = match req.body {
                p4bid::serve::RequestBody::Source(source) => {
                    p4bid::batch::BatchInput::new(req.id, source)
                }
                p4bid::serve::RequestBody::Path(_) => unreachable!("inline request"),
            };
            engine.run_epoch(std::slice::from_ref(&input)).to_ndjson()
        });
    });

    // The same request answered from the verdict cache: parse + hash +
    // lookup + re-render, no type checking. The warm-resubmission floor.
    group.bench_with_input(BenchmarkId::new("request_to_report", "cache-hit"), &line, |b, line| {
        let mut engine = ServeEngine::with_core(core.clone(), 1).with_cache(1024);
        let req = parse_request(line).expect("parses");
        let p4bid::serve::RequestBody::Source(source) = req.body else { unreachable!() };
        let prime = p4bid::batch::BatchInput::new(req.id, source);
        let _ = engine.run_epoch(std::slice::from_ref(&prime)); // prime the cache
        b.iter(|| {
            let req = parse_request(line).expect("parses");
            let p4bid::serve::RequestBody::Source(source) = req.body else { unreachable!() };
            let input = p4bid::batch::BatchInput::new(req.id, source);
            engine.run_epoch(std::slice::from_ref(&input)).to_ndjson()
        });
    });

    let corpus = synthetic_corpus(EPOCH);
    group.throughput(Throughput::Elements(EPOCH as u64));
    group.bench_with_input(BenchmarkId::new("epoch", "64-programs"), &corpus, |b, inputs| {
        let mut engine = ServeEngine::with_core(core.clone(), 0);
        b.iter(|| engine.run_epoch(inputs).render_table());
    });

    // Incremental re-check: a 64-item program answered off the warm
    // snapshot tree after an edit to its final control only. Every
    // iteration uses a fresh tweak so the request is a genuine edit (a
    // 63-item prefix hit + one-item suffix re-check), never a full-depth
    // replay of a prior verdict.
    let warm = warm_snapshot_core();
    let edits = edit_pool();
    group.bench_function("edit_last_item", |b| {
        let mut engine = ServeEngine::with_core(warm.clone(), 1);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let input = &edits[i % edits.len()];
            engine.run_epoch(std::slice::from_ref(input)).to_ndjson()
        });
    });

    // The idle cost of `p4bid watch`: a scan tick over an unchanged
    // directory (mtime fast path, no reads).
    let dir = scan_dir(EPOCH);
    group.bench_function("scan_tick_unchanged", |b| {
        let mut scanner = DirScanner::new(&dir);
        let first = scanner.scan().expect("initial scan");
        assert_eq!(first.changed.len(), EPOCH);
        b.iter(|| {
            let delta = scanner.scan().expect("tick");
            assert!(delta.is_empty());
        });
    });
    group.finish();

    summary_json(&core, &line, &corpus, &dir);
    let _ = std::fs::remove_dir_all(dir);
}

/// Self-timed summary for the JSON artifact: microseconds per single
/// request, per 64-program epoch, and per no-change scan tick.
fn summary_json(
    core: &SharedSessionCore,
    line: &str,
    corpus: &[p4bid::batch::BatchInput],
    dir: &std::path::Path,
) {
    let time_us =
        |batches, iters, f: &mut dyn FnMut()| p4bid_bench::time_ms_best_of(batches, iters, f) * 1e3;

    let mut engine = ServeEngine::with_core(core.clone(), 1);
    let request_us = time_us(5, 50, &mut || {
        let req = parse_request(line).expect("parses");
        let p4bid::serve::RequestBody::Source(source) = req.body else { unreachable!() };
        let input = p4bid::batch::BatchInput::new(req.id, source);
        std::hint::black_box(engine.run_epoch(std::slice::from_ref(&input)).to_ndjson());
    });
    let mut engine = ServeEngine::with_core(core.clone(), 0);
    let epoch_us = time_us(3, 5, &mut || {
        std::hint::black_box(engine.run_epoch(corpus).render_table());
    });
    let mut scanner = DirScanner::new(dir);
    let _ = scanner.scan().expect("initial scan");
    let scan_us = time_us(5, 50, &mut || {
        std::hint::black_box(scanner.scan().expect("tick"));
    });

    let mut engine = ServeEngine::with_core(core.clone(), 1).with_cache(1024);
    {
        let req = parse_request(line).expect("parses");
        let p4bid::serve::RequestBody::Source(source) = req.body else { unreachable!() };
        let prime = p4bid::batch::BatchInput::new(req.id, source);
        let _ = engine.run_epoch(std::slice::from_ref(&prime)); // prime the cache
    }
    let cache_hit_us = time_us(5, 50, &mut || {
        let req = parse_request(line).expect("parses");
        let p4bid::serve::RequestBody::Source(source) = req.body else { unreachable!() };
        let input = p4bid::batch::BatchInput::new(req.id, source);
        std::hint::black_box(engine.run_epoch(std::slice::from_ref(&input)).to_ndjson());
    });
    // The incremental triple: full cold check of the 64-item program
    // (snapshots disabled), the same program after a last-item edit on a
    // warm snapshot tree, and an unchanged resubmission (a full-depth
    // snapshot hit, no suffix left to check). The session counters pin
    // the mechanism: every edit request must resume past 63 items.
    let edits = edit_pool();
    let cold = SharedSessionCore::with_prefix_cache_cap(CheckOptions::ifc(), 0);
    let mut engine = ServeEngine::with_core(cold, 1);
    let mut i = 0usize;
    let full64_us = time_us(3, 10, &mut || {
        i += 1;
        let input = &edits[i % edits.len()];
        std::hint::black_box(engine.run_epoch(std::slice::from_ref(input)).to_ndjson());
    });
    let warm = warm_snapshot_core();
    let mut engine = ServeEngine::with_core(warm.clone(), 1);
    let mut i = 0usize;
    let edit_us = time_us(3, 10, &mut || {
        i += 1;
        let input = &edits[i % edits.len()];
        std::hint::black_box(engine.run_epoch(std::slice::from_ref(input)).to_ndjson());
    });
    let sessions = engine.cumulative_stats().sessions;
    assert_eq!(sessions.prefix_misses, 0, "every edit resumes from the tree");
    let edit_items_saved = sessions.prefix_items_saved as f64 / sessions.prefix_hits as f64;
    let mut engine = ServeEngine::with_core(warm, 1);
    let unchanged = p4bid::batch::BatchInput::new("hit", many_item_program(0));
    let prefix_hit_us = time_us(5, 50, &mut || {
        std::hint::black_box(engine.run_epoch(std::slice::from_ref(&unchanged)).to_ndjson());
    });

    #[cfg(unix)]
    let concurrent4_us = concurrent4_request_us(core);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"p4bid-bench-serve/3\",");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"epoch_programs\": {},", corpus.len());
    let _ = writeln!(json, "  \"request_to_report_us\": {request_us:.3},");
    let _ = writeln!(json, "  \"epoch64_us\": {epoch_us:.3},");
    let _ = writeln!(
        json,
        "  \"epoch_programs_per_sec\": {:.0},",
        corpus.len() as f64 / (epoch_us / 1e6)
    );
    let _ = writeln!(json, "  \"scan_tick_unchanged_us\": {scan_us:.3},");
    let _ = writeln!(json, "  \"cache_hit_request_us\": {cache_hit_us:.3},");
    let _ = writeln!(json, "  \"full_check64_us\": {full64_us:.3},");
    let _ = writeln!(json, "  \"edit_last_item_us\": {edit_us:.3},");
    let _ = writeln!(json, "  \"edit_vs_full_check\": {:.3},", edit_us / full64_us);
    let _ = writeln!(json, "  \"edit_items_saved_per_request\": {edit_items_saved:.1},");
    let _ = writeln!(json, "  \"prefix_hit_request_us\": {prefix_hit_us:.3},");
    #[cfg(unix)]
    let _ = writeln!(json, "  \"concurrent4_request_us\": {concurrent4_us:.3}");
    #[cfg(not(unix))]
    let _ = writeln!(json, "  \"concurrent4_request_us\": null");
    json.push_str("}\n");

    match std::env::var("P4BID_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write bench JSON");
            println!("wrote serve_latency bench summary to {path}");
        }
        _ => println!("\n{json}"),
    }
}

/// Concurrent-producer request-to-report: a real `run_socket` daemon with
/// four producer connections blasting distinct requests, `max_epoch = 1`
/// so every request is its own epoch. Wall-clock over the whole run,
/// divided by the request count — the end-to-end per-request latency the
/// front door sustains under concurrency (acceptor, reader threads,
/// sequencer, and check included).
#[cfg(unix)]
fn concurrent4_request_us(core: &SharedSessionCore) -> f64 {
    use std::io::Write as _;

    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 64;
    let dir = std::env::temp_dir().join(format!("p4bid-serve-bench-sock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let socket = dir.join("bench.sock");

    // Distinct programs per request so every one takes the full check
    // path — this measures the front door, not the verdict cache.
    let corpus = synthetic_corpus(PRODUCERS * PER_PRODUCER);
    let feeds: Vec<String> = (0..PRODUCERS)
        .map(|p| {
            corpus[p * PER_PRODUCER..(p + 1) * PER_PRODUCER]
                .iter()
                .map(|input| {
                    let source = input
                        .source
                        .replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', "\\n")
                        .replace('\t', "\\t");
                    format!("{{\"id\": \"{}\", \"source\": \"{source}\"}}\n", input.name)
                })
                .collect()
        })
        .collect();

    let mut engine = ServeEngine::with_core(core.clone(), 1);
    let limits = p4bid::serve::IngestLimits { max_epoch: 1, ..Default::default() };
    let total = (PRODUCERS * PER_PRODUCER) as u64;
    let start = std::time::Instant::now();
    let elapsed = std::thread::scope(|s| {
        for feed in &feeds {
            let socket = &socket;
            s.spawn(move || {
                let mut stream = loop {
                    match std::os::unix::net::UnixStream::connect(socket) {
                        Ok(stream) => break stream,
                        Err(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
                    }
                };
                stream.write_all(feed.as_bytes()).expect("feed written");
            });
        }
        let mut out = std::io::sink();
        let mut log = std::io::sink();
        p4bid::serve::run_socket(
            &mut engine,
            &socket,
            &mut out,
            &mut log,
            true,
            Some(total),
            &limits,
        )
        .expect("bench daemon");
        start.elapsed()
    });
    let _ = std::fs::remove_dir_all(&dir);
    elapsed.as_secs_f64() * 1e6 / total as f64
}

criterion_group!(benches, bench_serve_latency);
criterion_main!(benches);
