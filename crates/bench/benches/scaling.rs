//! **Ablation F-extra-1** (DESIGN.md): typechecking time vs program size.
//!
//! Sweeps synthetic programs with `n ∈ {1, 4, 16, 64, 128}` match-action
//! table/action pairs and measures the baseline checker on the
//! unannotated form against the IFC checker on the annotated form.
//!
//! Expected shape: both checkers scale (near-)linearly in program size,
//! with the IFC line a small constant factor above the baseline —
//! consistent with Table 1's claim that the security extension is cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p4bid::synth::synth_program;
use p4bid::{check, CheckOptions};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    for n in [1usize, 4, 16, 64, 128] {
        let annotated = synth_program(n, true);
        let plain = synth_program(n, false);
        group.throughput(Throughput::Bytes(annotated.len() as u64));
        group.bench_with_input(BenchmarkId::new("base", n), &plain, |b, src| {
            b.iter(|| check(src, &CheckOptions::base()).expect("accepts"));
        });
        group.bench_with_input(BenchmarkId::new("ifc", n), &annotated, |b, src| {
            b.iter(|| check(src, &CheckOptions::ifc()).expect("accepts"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
