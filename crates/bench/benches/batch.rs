//! Batch-throughput bench: the `p4bid batch` hot path.
//!
//! Measures (a) one-shot [`check`] against a reused [`CheckerSession`] on
//! the same program — the string-interning + prelude-caching win —
//! (b) whole-corpus batch checking at one worker vs one worker per core —
//! the thread-pool win (flat on single-core CI runners) — and (c) the
//! topology fixpoint on an 8-hop chain, recorded as a per-round cost
//! (`fixpoint_rounds_us`).
//!
//! Run with `cargo bench -p p4bid-bench --bench batch`. Set
//! `P4BID_BENCH_JSON=path` to also write a machine-readable summary (the
//! `BENCH_batch.json` baseline in the repo root; CI uploads it as an
//! artifact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p4bid::batch::{check_batch, synthetic_corpus};
use p4bid::synth::synth_program;
use p4bid::topo::{check_topology, TopoManifest, Topology};
use p4bid::{check, CheckOptions, CheckerSession};
use std::fmt::Write as _;

const CORPUS: usize = 200;
const TOPO_HOPS: usize = 8;

/// A `TOPO_HOPS`-switch chain seeded `high` at the edge: the seed takes
/// one fixpoint round per hop to reach the core, so the fixpoint runs
/// the full `TOPO_HOPS` rounds — the worst case for a chain.
fn chain_topology() -> Topology {
    let mut m = String::from("lattice = \"low < high\"\n");
    for i in 0..TOPO_HOPS {
        let _ = writeln!(m, "\n[switch s{i}]\nprogram = \"s{i}.p4\"");
        if i == 0 {
            m.push_str("ingress = \"high\"\n");
        }
        if i + 1 < TOPO_HOPS {
            let _ = writeln!(m, "\n[link s{i}:out -> s{}:in]", i + 1);
        }
    }
    let program = "control Fwd(inout <bit<8>, high> x) { apply { x = x + 8w1; } }";
    TopoManifest::parse(&m)
        .expect("bench manifest parses")
        .resolve_with(|_| Ok(program.to_string()))
        .expect("bench topology assembles")
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");

    let program = synth_program(8, true);
    group.bench_with_input(BenchmarkId::new("one_shot", "synth-8"), &program, |b, src| {
        b.iter(|| check(src, &CheckOptions::ifc()).expect("accepts"));
    });
    group.bench_with_input(BenchmarkId::new("session_reuse", "synth-8"), &program, |b, src| {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        b.iter(|| session.check(src).expect("accepts"));
    });

    let corpus = synthetic_corpus(CORPUS);
    group.throughput(Throughput::Elements(CORPUS as u64));
    group.bench_with_input(BenchmarkId::new("corpus", "jobs-1"), &corpus, |b, inputs| {
        b.iter(|| check_batch(inputs, &CheckOptions::ifc(), 1));
    });
    group.bench_with_input(BenchmarkId::new("corpus", "jobs-max"), &corpus, |b, inputs| {
        b.iter(|| check_batch(inputs, &CheckOptions::ifc(), 0));
    });
    // Lineage recording is on by default; this pins what the "explain"
    // machinery costs against the same corpus with recording off.
    group.bench_with_input(
        BenchmarkId::new("corpus", "jobs-1-no-lineage"),
        &corpus,
        |b, inputs| {
            b.iter(|| check_batch(inputs, &CheckOptions::ifc().with_lineage(false), 1));
        },
    );
    // The topology fixpoint on an 8-hop chain: one round per hop, so
    // this prices label propagation plus per-switch re-checking (most
    // hops are verdict-cache hits after round one).
    let topo = chain_topology();
    group.throughput(Throughput::Elements(TOPO_HOPS as u64));
    group.bench_with_input(
        BenchmarkId::new("topo", format!("chain-{TOPO_HOPS}")),
        &topo,
        |b, t| {
            b.iter(|| check_topology(t, &CheckOptions::ifc(), 1));
        },
    );
    group.finish();

    summary_json(&corpus);
}

/// Self-timed summary for the JSON artifact: programs/second for the
/// serial and parallel batch paths, the session-reuse speedup, and the
/// flow-lineage ("explain") recording overhead.
fn summary_json(corpus: &[p4bid::batch::BatchInput]) {
    let time_ms = |f: &mut dyn FnMut()| p4bid_bench::time_ms_best_of(3, 5, f);

    let opts = CheckOptions::ifc();
    let jobs_1_ms = time_ms(&mut || {
        let _ = check_batch(corpus, &opts, 1);
    });
    let jobs_max_ms = time_ms(&mut || {
        let _ = check_batch(corpus, &opts, 0);
    });
    let no_lineage = CheckOptions::ifc().with_lineage(false);
    let no_lineage_ms = time_ms(&mut || {
        let _ = check_batch(corpus, &no_lineage, 1);
    });
    let program = synth_program(8, true);
    let one_shot_ms = time_ms(&mut || {
        check(&program, &opts).expect("accepts");
    });
    let mut session = CheckerSession::new(opts.clone());
    let session_ms = time_ms(&mut || {
        session.check(&program).expect("accepts");
    });
    let topo = chain_topology();
    let rounds = check_topology(&topo, &opts, 1).rounds.max(1);
    let topo_ms = time_ms(&mut || {
        let _ = check_topology(&topo, &opts, 1);
    });

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"p4bid-bench-batch/3\",");
    let _ = writeln!(json, "  \"corpus_programs\": {},", corpus.len());
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"batch_jobs_1_ms\": {jobs_1_ms:.3},");
    let _ = writeln!(json, "  \"batch_jobs_max_ms\": {jobs_max_ms:.3},");
    let _ = writeln!(
        json,
        "  \"programs_per_sec_jobs_1\": {:.0},",
        corpus.len() as f64 / (jobs_1_ms / 1e3)
    );
    let _ = writeln!(
        json,
        "  \"programs_per_sec_jobs_max\": {:.0},",
        corpus.len() as f64 / (jobs_max_ms / 1e3)
    );
    let _ = writeln!(json, "  \"batch_jobs_1_no_lineage_ms\": {no_lineage_ms:.3},");
    let _ = writeln!(
        json,
        "  \"lineage_overhead_pct\": {:.1},",
        (jobs_1_ms / no_lineage_ms.max(1e-9) - 1.0) * 100.0
    );
    let _ = writeln!(json, "  \"one_shot_check_ms\": {one_shot_ms:.4},");
    let _ = writeln!(json, "  \"session_check_ms\": {session_ms:.4},");
    let _ = writeln!(json, "  \"session_speedup\": {:.2},", one_shot_ms / session_ms.max(1e-9));
    let _ = writeln!(json, "  \"topo_chain_switches\": {TOPO_HOPS},");
    let _ = writeln!(json, "  \"topo_fixpoint_rounds\": {rounds},");
    let _ = writeln!(json, "  \"fixpoint_rounds_us\": {:.2}", topo_ms * 1e3 / rounds as f64);
    json.push_str("}\n");

    match std::env::var("P4BID_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write bench JSON");
            println!("wrote batch bench summary to {path}");
        }
        _ => println!("\n{json}"),
    }
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
