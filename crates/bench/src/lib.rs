//! Benchmark-only crate: see the `benches/` directory.
//!
//! * `table1` — regenerates the paper's Table 1 (typechecking time,
//!   baseline vs P4BID);
//! * `scaling` — checking time vs program size (ablation);
//! * `lattice_size` — checking time vs lattice size (ablation);
//! * `interp` — interpreter and NI-harness throughput (substrate).

#![forbid(unsafe_code)]
