//! Benchmark-only crate: see the `benches/` directory.
//!
//! * `table1` — regenerates the paper's Table 1 (typechecking time,
//!   baseline vs P4BID);
//! * `scaling` — checking time vs program size (ablation);
//! * `lattice_size` — checking time vs lattice size (ablation);
//! * `interp` — interpreter and NI-harness throughput (substrate);
//! * `batch` — session reuse and whole-corpus batch throughput;
//! * `typeck_hot` — the checker hot paths the hash-consed type pool
//!   targets (pooled sessions, wide-header field lookup, τ-equality);
//! * `session_warmup` — cold session build vs shared-core clone (the
//!   fixed cost the frozen core removes);
//! * `serve_latency` — request-to-report latency of the streaming ingest
//!   service against a warm core, plus the watcher's idle scan tick.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Best-of-`batches` batches of `iters` iterations, in milliseconds per
/// iteration: the estimator behind the `P4BID_BENCH_JSON` summaries of
/// the `batch` and `typeck_hot` benches. Taking the minimum batch is
/// robust against transient scheduler noise on shared CI runners (the
/// fastest observed batch is the closest to the true cost).
pub fn time_ms_best_of(batches: u32, iters: u32, f: &mut dyn FnMut()) -> f64 {
    f(); // warm-up
    (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
        })
        .fold(f64::INFINITY, f64::min)
}
