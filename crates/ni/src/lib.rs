//! Empirical non-interference testing for P4BID (Definitions 4.1/4.2 and
//! Theorem 4.3 of the paper, made executable).
//!
//! The paper *proves* that well-typed programs are non-interfering; this
//! crate *tests* it, in both directions:
//!
//! * programs accepted by the IFC checker are run on many pairs of
//!   low-equivalent inputs and must produce observably equal outputs and
//!   identical control-flow signals ([`check_non_interference`]);
//! * the seeded-buggy case-study programs (which the checker rejects) are
//!   run through the same harness to produce concrete [`LeakWitness`]es —
//!   e.g. the §5.2 cache's `hit` flag revealing a secret query.
//!
//! [`genprog`] adds a random program generator so the soundness theorem
//! can be fuzzed at scale.
//!
//! # Examples
//!
//! ```
//! use p4bid_typeck::{check_source, CheckOptions};
//! use p4bid_interp::ControlPlane;
//! use p4bid_ni::{check_non_interference, NiConfig};
//!
//! let typed = check_source(r#"
//!     control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
//!         apply { h = h + l; }
//!     }
//! "#, &CheckOptions::ifc()).unwrap();
//! let outcome = check_non_interference(
//!     &typed, &ControlPlane::new(), "C", &NiConfig::default().with_runs(50),
//! );
//! assert!(outcome.holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod genprog;
pub mod harness;
pub mod lowequiv;
pub mod sequence;

pub use genprog::{random_program, GenConfig, GeneratedProgram};
pub use harness::{check_non_interference, run_pair, LeakWitness, NiConfig, NiOutcome};
pub use lowequiv::{
    low_equal, observable_differences, random_value, scramble_unobservable, Difference,
};
pub use sequence::{check_sequence_non_interference, SequenceConfig};
