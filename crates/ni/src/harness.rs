//! The paired-execution non-interference harness: an executable analogue
//! of Definition 4.2 / Theorem 4.3.
//!
//! Given a typechecked program and a control plane, the harness repeatedly:
//!
//! 1. draws a random input packet (the control's parameter values),
//! 2. scrambles every field whose label is not `⊑ l` to get a second,
//!    low-equivalent input (the two initial stores of Definition 4.1),
//! 3. runs both packets under the *same* control plane `C`,
//! 4. checks that the final parameter values agree at every observable
//!    leaf and that the control-flow signals agree (clause 7: both runs
//!    `cont`, or both `exit`).
//!
//! For programs accepted by the IFC checker the theorem says no difference
//! can ever appear; for the seeded-buggy case-study variants the harness
//! finds a concrete [`LeakWitness`] demonstrating the interference.

use crate::lowequiv::{observable_differences, random_value, scramble_unobservable, Difference};
use p4bid_interp::{run_control, ControlPlane, EvalError, Value};
use p4bid_lattice::Label;
use p4bid_typeck::TypedProgram;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a non-interference check.
#[derive(Debug, Clone)]
pub struct NiConfig {
    /// Number of random input pairs to try.
    pub runs: usize,
    /// RNG seed (the harness is fully deterministic given the seed).
    pub seed: u64,
    /// Observation level `l`; the observer sees every label `⊑ l`.
    /// `None` means the lattice bottom (a public observer).
    pub observe: Option<String>,
}

impl Default for NiConfig {
    fn default() -> Self {
        NiConfig { runs: 100, seed: 0xBAD5EED, observe: None }
    }
}

impl NiConfig {
    /// A config with the given number of runs.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the observation level by label name.
    #[must_use]
    pub fn observing(mut self, label: impl Into<String>) -> Self {
        self.observe = Some(label.into());
        self
    }
}

/// Named final parameter values of one run.
pub type RunOutputs = Vec<(String, Value)>;

/// A concrete interference witness: two low-equivalent inputs whose
/// observable outputs differ.
#[derive(Debug, Clone)]
pub struct LeakWitness {
    /// The input pair (low-equivalent by construction).
    pub inputs: (Vec<Value>, Vec<Value>),
    /// The final parameter values of both runs.
    pub outputs: (RunOutputs, RunOutputs),
    /// Observable differences (`param.path: a ≠ b`), or empty when the
    /// leak is through the exit signal.
    pub differences: Vec<Difference>,
    /// Whether each run exited.
    pub exited: (bool, bool),
    /// Which pair index found the leak.
    pub run_index: usize,
}

impl fmt::Display for LeakWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "non-interference violated on pair #{} (inputs agree on all observable fields):",
            self.run_index
        )?;
        if self.exited.0 != self.exited.1 {
            writeln!(
                f,
                "  control-flow signal differs: run A {}, run B {}",
                if self.exited.0 { "exited" } else { "continued" },
                if self.exited.1 { "exited" } else { "continued" },
            )?;
        }
        for d in &self.differences {
            writeln!(f, "  observable output differs at {d}")?;
        }
        Ok(())
    }
}

/// The outcome of a non-interference check.
#[derive(Debug, Clone)]
pub enum NiOutcome {
    /// All pairs agreed on every observable output: the program behaved
    /// non-interferently on this sample.
    Holds {
        /// Number of pairs executed.
        runs: usize,
    },
    /// A concrete leak was found.
    Leak(Box<LeakWitness>),
    /// Evaluation failed (control-plane misconfiguration etc.).
    Error(EvalError),
}

impl NiOutcome {
    /// Whether non-interference held on the sample.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, NiOutcome::Holds { .. })
    }

    /// The witness, if a leak was found.
    #[must_use]
    pub fn witness(&self) -> Option<&LeakWitness> {
        match self {
            NiOutcome::Leak(w) => Some(w),
            _ => None,
        }
    }
}

/// Result of [`run_pair`]: the observable differences plus each run's
/// exit flag.
pub type PairResult = (Vec<Difference>, (bool, bool));

/// Runs one specific low-equivalent pair and reports the observable
/// differences.
///
/// # Errors
///
/// Propagates [`EvalError`] from either run.
pub fn run_pair(
    typed: &TypedProgram,
    cp: &ControlPlane,
    control: &str,
    observe: Label,
    args_a: Vec<Value>,
    args_b: Vec<Value>,
) -> Result<PairResult, EvalError> {
    let ctrl =
        typed.control(control).ok_or_else(|| EvalError::UnknownControl(control.to_string()))?;
    let out_a = run_control(typed, cp, control, args_a)?;
    let out_b = run_control(typed, cp, control, args_b)?;
    let ctx = typed.ctx.borrow();
    let mut diffs = Vec::new();
    for (param, ((name, va), (_, vb))) in
        ctrl.params.iter().zip(out_a.params.iter().zip(out_b.params.iter()))
    {
        for mut d in observable_differences(&ctx, &typed.lattice, observe, param.ty, va, vb) {
            d.path = if d.path.is_empty() { name.clone() } else { format!("{name}.{}", d.path) };
            diffs.push(d);
        }
    }
    Ok((diffs, (out_a.exited, out_b.exited)))
}

/// Empirically checks non-interference of a control block (see the module
/// docs for the protocol).
///
/// The observation level defaults to `⊥`. The check is deterministic in
/// `config.seed`.
#[must_use]
pub fn check_non_interference(
    typed: &TypedProgram,
    cp: &ControlPlane,
    control: &str,
    config: &NiConfig,
) -> NiOutcome {
    let Some(ctrl) = typed.control(control) else {
        return NiOutcome::Error(EvalError::UnknownControl(control.to_string()));
    };
    let lat = &typed.lattice;
    let observe = match &config.observe {
        None => lat.bottom(),
        Some(name) => match lat.label(name) {
            Some(l) => l,
            None => {
                return NiOutcome::Error(EvalError::Internal(format!(
                    "observation label `{name}` is not in the lattice"
                )));
            }
        },
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    for run_index in 0..config.runs {
        // Borrow the shared ctx only while building inputs / comparing
        // outputs; `run_control` takes its own borrows internally.
        let (args_a, args_b) = {
            let ctx = typed.ctx.borrow();
            let args_a: Vec<Value> =
                ctrl.params.iter().map(|p| random_value(&mut rng, &ctx, p.ty)).collect();
            let args_b: Vec<Value> = ctrl
                .params
                .iter()
                .zip(&args_a)
                .map(|(p, v)| scramble_unobservable(&mut rng, &ctx, lat, observe, p.ty, v))
                .collect();
            (args_a, args_b)
        };

        let out_a = match run_control(typed, cp, control, args_a.clone()) {
            Ok(o) => o,
            Err(e) => return NiOutcome::Error(e),
        };
        let out_b = match run_control(typed, cp, control, args_b.clone()) {
            Ok(o) => o,
            Err(e) => return NiOutcome::Error(e),
        };

        let mut diffs = Vec::new();
        {
            let ctx = typed.ctx.borrow();
            for (param, ((name, va), (_, vb))) in
                ctrl.params.iter().zip(out_a.params.iter().zip(out_b.params.iter()))
            {
                for mut d in observable_differences(&ctx, lat, observe, param.ty, va, vb) {
                    d.path =
                        if d.path.is_empty() { name.clone() } else { format!("{name}.{}", d.path) };
                    diffs.push(d);
                }
            }
        }

        if !diffs.is_empty() || out_a.exited != out_b.exited {
            return NiOutcome::Leak(Box::new(LeakWitness {
                inputs: (args_a, args_b),
                outputs: (out_a.params, out_b.params),
                differences: diffs,
                exited: (out_a.exited, out_b.exited),
                run_index,
            }));
        }
    }
    NiOutcome::Holds { runs: config.runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_typeck::{check_source, CheckOptions};

    fn typed_ifc(src: &str) -> TypedProgram {
        check_source(src, &CheckOptions::ifc()).expect("typechecks")
    }

    fn typed_permissive(src: &str) -> TypedProgram {
        check_source(src, &CheckOptions::permissive()).expect("permissive-typechecks")
    }

    #[test]
    fn well_typed_program_is_non_interfering() {
        let t = typed_ifc(
            r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
                apply {
                    h = h + l;
                    if (l == 8w0) { l = 8w1; }
                }
            }"#,
        );
        let out = check_non_interference(&t, &ControlPlane::new(), "C", &NiConfig::default());
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn explicit_leak_is_caught() {
        // Rejected by the IFC checker; admit it through the permissive
        // checker (labels kept, flows unenforced) and watch the harness
        // find the leak.
        let t = typed_permissive(
            r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
                apply { l = h; }
            }"#,
        );
        let out = check_non_interference(&t, &ControlPlane::new(), "C", &NiConfig::default());
        let w = out.witness().expect("l = h leaks");
        assert!(w.differences.iter().any(|d| d.path.starts_with('l')), "{w}");
    }

    #[test]
    fn implicit_leak_is_caught() {
        let t = typed_permissive(
            r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
                apply { if (h > 8w127) { l = 8w1; } else { l = 8w0; } }
            }"#,
        );
        let out = check_non_interference(&t, &ControlPlane::new(), "C", &NiConfig::default());
        assert!(!out.holds(), "branching on a secret leaks one bit");
    }

    #[test]
    fn exit_signal_leak_is_caught() {
        let t = typed_permissive(
            r#"control C(inout <bit<8>, high> h) {
                apply { if (h > 8w127) { exit; } }
            }"#,
        );
        let out = check_non_interference(&t, &ControlPlane::new(), "C", &NiConfig::default());
        let w = out.witness().expect("exit timing leaks");
        assert_ne!(w.exited.0, w.exited.1, "{w}");
    }

    #[test]
    fn observation_level_changes_verdict() {
        // A high-to-high copy: invisible to a low observer, visible to a
        // high observer only if it *differs* — it never does, since h is
        // scrambled identically... so instead leak high into high from a
        // differing secret: a high observer sees h, so no scrambling
        // happens at observe=high and NI trivially holds.
        let t = typed_permissive(
            r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
                apply { l = h; }
            }"#,
        );
        // Observing at high: nothing is scrambled, runs are identical.
        let cfg = NiConfig::default().observing("high");
        assert!(check_non_interference(&t, &ControlPlane::new(), "C", &cfg).holds());
        // Observing at low: the leak appears.
        assert!(
            !check_non_interference(&t, &ControlPlane::new(), "C", &NiConfig::default()).holds()
        );
    }

    #[test]
    fn harness_is_deterministic_in_seed() {
        let t = typed_permissive(
            r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
                apply { if (h == 8w1) { l = 8w1; } }
            }"#,
        );
        let cfg = NiConfig::default().with_seed(42).with_runs(500);
        let a = check_non_interference(&t, &ControlPlane::new(), "C", &cfg);
        let b = check_non_interference(&t, &ControlPlane::new(), "C", &cfg);
        match (a, b) {
            (NiOutcome::Leak(wa), NiOutcome::Leak(wb)) => {
                assert_eq!(wa.run_index, wb.run_index);
                assert_eq!(wa.inputs, wb.inputs);
            }
            (a, b) => panic!("expected identical leaks, got {a:?} / {b:?}"),
        }
    }

    #[test]
    fn unknown_control_reported() {
        let t = typed_ifc("control C(inout bit<8> x) { apply { } }");
        let out = check_non_interference(&t, &ControlPlane::new(), "Nope", &NiConfig::default());
        assert!(matches!(out, NiOutcome::Error(EvalError::UnknownControl(_))));
    }

    #[test]
    fn run_pair_reports_paths() {
        let t = typed_permissive(
            r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
                apply { l = h; }
            }"#,
        );
        let lat = t.lattice.clone();
        let (diffs, exited) = run_pair(
            &t,
            &ControlPlane::new(),
            "C",
            lat.bottom(),
            vec![Value::bit(8, 0), Value::bit(8, 1)],
            vec![Value::bit(8, 0), Value::bit(8, 2)],
        )
        .unwrap();
        assert_eq!(exited, (false, false));
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "l");
        assert_eq!(diffs[0].left, Value::bit(8, 1));
        assert_eq!(diffs[0].right, Value::bit(8, 2));
    }
}
