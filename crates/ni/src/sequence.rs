//! Multi-packet (recirculation) non-interference — the paper's first
//! future-work direction (§7):
//!
//! > "our non-interference theorems treat P4 programs as mapping a single
//! > input packet to a single output packet, but P4 allows programming
//! > switches that can maintain internal state and recirculate packets
//! > for additional processing. These features could lead to security
//! > leaks if an adversary can observe sequences of input and output
//! > packets."
//!
//! This module models the sequence setting without extending the
//! language: the control's `inout` parameters *are* the state carried
//! across rounds. Each trial runs two executions over `rounds`
//! recirculations:
//!
//! 1. both runs start from low-equivalent parameter values;
//! 2. after each round, the observable parts of both runs' outputs must
//!    agree (the adversary sees the whole output *sequence*) and the
//!    exit signals must agree;
//! 3. the outputs are fed back as the next round's inputs, and the
//!    unobservable parts are *independently re-scrambled* — modeling
//!    secrets that change between recirculations.
//!
//! For programs accepted by the IFC checker, single-round
//! non-interference composes: low-equal inputs produce low-equal outputs,
//! which re-scrambling keeps low-equal, so the whole sequence is safe.
//! The tests check exactly this, and that one-round-leaky programs also
//! leak somewhere in the sequence.

use crate::harness::{LeakWitness, NiOutcome};
use crate::lowequiv::{observable_differences, random_value, scramble_unobservable};
use p4bid_interp::{run_control, ControlPlane, EvalError, Value};
use p4bid_typeck::TypedProgram;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a sequence (recirculation) non-interference check.
#[derive(Debug, Clone)]
pub struct SequenceConfig {
    /// Recirculation rounds per trial.
    pub rounds: usize,
    /// Number of independent trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Observation label name (`None` = lattice bottom).
    pub observe: Option<String>,
    /// Whether the unobservable parts are independently re-randomized
    /// between rounds (fresh secrets per packet) or left to persist
    /// (stateful switch memory). Both settings must be safe for
    /// well-typed programs.
    pub refresh_secrets: bool,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        SequenceConfig {
            rounds: 4,
            trials: 50,
            seed: 0x5EC0ADE,
            observe: None,
            refresh_secrets: true,
        }
    }
}

impl SequenceConfig {
    /// Sets the number of rounds, builder-style.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the number of trials, builder-style.
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the RNG seed, builder-style.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the observation label, builder-style.
    #[must_use]
    pub fn observing(mut self, label: impl Into<String>) -> Self {
        self.observe = Some(label.into());
        self
    }

    /// Chooses between fresh secrets per round (`true`, the default) and
    /// persistent secret state (`false`), builder-style.
    #[must_use]
    pub fn with_refresh_secrets(mut self, refresh: bool) -> Self {
        self.refresh_secrets = refresh;
        self
    }
}

/// Checks non-interference over sequences of recirculated packets; see
/// the module docs for the protocol.
#[must_use]
pub fn check_sequence_non_interference(
    typed: &TypedProgram,
    cp: &ControlPlane,
    control: &str,
    config: &SequenceConfig,
) -> NiOutcome {
    let Some(ctrl) = typed.control(control) else {
        return NiOutcome::Error(EvalError::UnknownControl(control.to_string()));
    };
    let lat = &typed.lattice;
    let observe = match &config.observe {
        None => lat.bottom(),
        Some(name) => match lat.label(name) {
            Some(l) => l,
            None => {
                return NiOutcome::Error(EvalError::Internal(format!(
                    "observation label `{name}` is not in the lattice"
                )));
            }
        },
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    for trial in 0..config.trials {
        let (mut args_a, mut args_b) = {
            let ctx = typed.ctx.borrow();
            let args_a: Vec<Value> =
                ctrl.params.iter().map(|p| random_value(&mut rng, &ctx, p.ty)).collect();
            let args_b: Vec<Value> = ctrl
                .params
                .iter()
                .zip(&args_a)
                .map(|(p, v)| scramble_unobservable(&mut rng, &ctx, lat, observe, p.ty, v))
                .collect();
            (args_a, args_b)
        };

        for round in 0..config.rounds {
            let out_a = match run_control(typed, cp, control, args_a.clone()) {
                Ok(o) => o,
                Err(e) => return NiOutcome::Error(e),
            };
            let out_b = match run_control(typed, cp, control, args_b.clone()) {
                Ok(o) => o,
                Err(e) => return NiOutcome::Error(e),
            };

            let mut diffs = Vec::new();
            {
                let ctx = typed.ctx.borrow();
                for (param, ((name, va), (_, vb))) in
                    ctrl.params.iter().zip(out_a.params.iter().zip(out_b.params.iter()))
                {
                    for mut d in observable_differences(&ctx, lat, observe, param.ty, va, vb) {
                        d.path = if d.path.is_empty() {
                            name.clone()
                        } else {
                            format!("{name}.{}", d.path)
                        };
                        diffs.push(d);
                    }
                }
            }
            if !diffs.is_empty() || out_a.exited != out_b.exited {
                return NiOutcome::Leak(Box::new(LeakWitness {
                    inputs: (args_a, args_b),
                    outputs: (out_a.params, out_b.params),
                    differences: diffs,
                    exited: (out_a.exited, out_b.exited),
                    run_index: trial * config.rounds + round,
                }));
            }

            // Recirculate: outputs become the next round's inputs. With
            // `refresh_secrets`, the unobservable parts are independently
            // refreshed in each run (new packets carry new secrets);
            // without it they persist (stateful switch memory).
            if config.refresh_secrets {
                let ctx = typed.ctx.borrow();
                args_a = ctrl
                    .params
                    .iter()
                    .zip(out_a.params)
                    .map(|(p, (_, v))| {
                        scramble_unobservable(&mut rng, &ctx, lat, observe, p.ty, &v)
                    })
                    .collect();
                args_b = ctrl
                    .params
                    .iter()
                    .zip(out_b.params)
                    .map(|(p, (_, v))| {
                        scramble_unobservable(&mut rng, &ctx, lat, observe, p.ty, &v)
                    })
                    .collect();
            } else {
                args_a = out_a.params.into_iter().map(|(_, v)| v).collect();
                args_b = out_b.params.into_iter().map(|(_, v)| v).collect();
            }
        }
    }
    NiOutcome::Holds { runs: config.trials * config.rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_typeck::{check_source, CheckOptions};

    #[test]
    fn well_typed_stateful_pipeline_is_sequence_safe() {
        // A program whose low state accumulates across recirculations and
        // whose high state depends on everything — still safe over any
        // number of rounds.
        let typed = check_source(
            r#"control C(inout <bit<8>, low> counter, inout <bit<8>, high> acc,
                         inout <bit<8>, low> data) {
                apply {
                    counter = counter + 8w1;
                    acc = acc + data;
                    if (data > 8w200) { data = 8w0; } else { data = data + 8w3; }
                }
            }"#,
            &CheckOptions::ifc(),
        )
        .expect("typechecks");
        let out = check_sequence_non_interference(
            &typed,
            &ControlPlane::new(),
            "C",
            &SequenceConfig::default().with_rounds(6).with_trials(40),
        );
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn single_round_leak_appears_in_sequences() {
        let typed = check_source(
            r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
                apply { if (h > 8w127) { l = l + 8w1; } }
            }"#,
            &CheckOptions::permissive(),
        )
        .expect("permissive");
        let out = check_sequence_non_interference(
            &typed,
            &ControlPlane::new(),
            "C",
            &SequenceConfig::default(),
        );
        assert!(out.witness().is_some(), "{out:?}");
    }

    #[test]
    fn delayed_leak_through_state_is_caught() {
        // Round 0 captures the secret into persistent (high) switch state
        // — fine in isolation; a *later* round dumps the state to a public
        // field. Exactly the multi-packet scenario §7 worries about: no
        // single round both reads the secret input and writes it to a
        // public output. The single-packet type system still rejects it
        // (the dump is an explicit flow), which is why the composition
        // argument goes through.
        let src = r#"control C(inout <bit<1>, low> phase, inout <bit<8>, low> out,
                               inout <bit<8>, high> stash, inout <bit<8>, high> secret) {
            apply {
                if (phase == 1w0) {
                    stash = secret;
                } else {
                    out = stash;
                }
                phase = 1w1;
            }
        }"#;
        assert!(check_source(src, &CheckOptions::ifc()).is_err());
        let typed = check_source(src, &CheckOptions::permissive()).expect("permissive");
        let out = check_sequence_non_interference(
            &typed,
            &ControlPlane::new(),
            "C",
            &SequenceConfig::default().with_refresh_secrets(false).with_trials(50),
        );
        assert!(out.witness().is_some(), "{out:?}");
    }

    #[test]
    fn well_typed_programs_safe_with_persistent_secrets_too() {
        let typed = check_source(
            r#"control C(inout <bit<8>, low> counter, inout <bit<8>, high> acc) {
                apply {
                    counter = counter + 8w1;
                    acc = acc + counter;
                }
            }"#,
            &CheckOptions::ifc(),
        )
        .expect("typechecks");
        let out = check_sequence_non_interference(
            &typed,
            &ControlPlane::new(),
            "C",
            &SequenceConfig::default().with_refresh_secrets(false).with_rounds(8),
        );
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn unknown_control_is_an_error() {
        let typed =
            check_source("control C(inout bit<8> x) { apply { } }", &CheckOptions::ifc()).unwrap();
        let out = check_sequence_non_interference(
            &typed,
            &ControlPlane::new(),
            "Nope",
            &SequenceConfig::default(),
        );
        assert!(matches!(out, NiOutcome::Error(EvalError::UnknownControl(_))));
    }
}
