//! Random program generation for soundness fuzzing.
//!
//! Samples programs from the paper's fragment over a fixed set of labeled
//! variables — assignments, arithmetic, conditionals, actions, calls,
//! exits, and match-action tables — together with a matching random
//! control plane.
//!
//! The generator interpolates between two regimes via
//! [`GenConfig::safe_bias`]:
//!
//! * `0.0` — fully arbitrary programs, most of which leak and are
//!   rejected (good for measuring how often rejection corresponds to an
//!   observable leak);
//! * `1.0` — label-respecting programs (secret data only flows upward,
//!   secret contexts only write secret state), almost all of which the
//!   checker accepts (good for fuzzing the soundness theorem on *deep*
//!   programs).
//!
//! The soundness property test then checks: *whenever the IFC checker
//! accepts a generated program, the paired-execution harness finds no
//! leak* (Theorem 4.3).

use p4bid_interp::{ControlPlane, KeyPattern, TableEntry, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum nesting depth of conditionals.
    pub max_depth: usize,
    /// Number of statements per block.
    pub stmts_per_block: usize,
    /// Number of actions to declare.
    pub actions: usize,
    /// Whether to declare a table over the actions.
    pub table: bool,
    /// Number of random table entries to install.
    pub entries: usize,
    /// Probability (0.0..=1.0) that each generated construct respects the
    /// security labels.
    pub safe_bias: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 2,
            stmts_per_block: 4,
            actions: 2,
            table: true,
            entries: 3,
            safe_bias: 0.5,
        }
    }
}

impl GenConfig {
    /// Sets the safe bias, builder-style.
    #[must_use]
    pub fn with_safe_bias(mut self, bias: f64) -> Self {
        self.safe_bias = bias;
        self
    }
}

/// A generated program plus the control plane it should run under.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// Annotated source text. The control is named `Fuzz` and has four
    /// `inout` parameters: `l0`, `l1` (low) and `h0`, `h1` (high), all
    /// `bit<8>`.
    pub source: String,
    /// Entries for the table (if any).
    pub control_plane: ControlPlane,
    /// The seed it was generated from.
    pub seed: u64,
}

/// The variables every generated program manipulates: `(name, is_high)`.
const VARS: [(&str, bool); 4] = [("l0", false), ("l1", false), ("h0", true), ("h1", true)];
const LOW_VARS: [&str; 2] = ["l0", "l1"];
const HIGH_VARS: [&str; 2] = ["h0", "h1"];

#[derive(Debug, Clone, Copy)]
struct ActionInfo {
    /// Whether the body was generated in forced-high mode (writes only
    /// secret state, hence callable from any context).
    #[allow(dead_code)] // recorded for debugging generated corpora
    high_only: bool,
}

/// Generates a random program from `seed`.
#[must_use]
pub fn random_program(seed: u64, cfg: &GenConfig) -> GeneratedProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Gen { rng: &mut rng, cfg };
    let mut src = String::new();
    src.push_str(
        "control Fuzz(inout <bit<8>, low> l0, inout <bit<8>, low> l1,\n\
         \x20            inout <bit<8>, high> h0, inout <bit<8>, high> h1) {\n",
    );

    let mut actions: Vec<(String, ActionInfo)> = Vec::new();
    for i in 0..g.cfg.actions {
        let name = format!("act{i}");
        // Safe actions write only high state, so they never constrain the
        // table key and are callable anywhere.
        let high_only = g.safe();
        let _ = writeln!(src, "    action {name}(bit<8> cparg) {{");
        let n = g.rng.gen_range(1..=g.cfg.stmts_per_block);
        for _ in 0..n {
            let stmt = g.stmt(0, high_only, true);
            let _ = writeln!(src, "        {stmt}");
        }
        src.push_str("    }\n");
        actions.push((name, ActionInfo { high_only }));
    }

    let has_table = g.cfg.table && !actions.is_empty();
    if has_table {
        // A low key is always below every action's write bound; an
        // arbitrary key may leak through low-writing actions.
        let key = if g.safe() { g.low_var() } else { g.any_var() };
        let _ = writeln!(src, "    table tbl {{");
        let _ = writeln!(src, "        key = {{ {key}: exact; }}");
        let list = actions.iter().map(|(a, _)| format!("{a};")).collect::<Vec<_>>().join(" ");
        let _ = writeln!(src, "        actions = {{ {list} NoAction; }}");
        let _ = writeln!(src, "        default_action = NoAction;");
        src.push_str("    }\n");
    }

    src.push_str("    apply {\n");
    let n = g.rng.gen_range(1..=g.cfg.stmts_per_block + 2);
    for _ in 0..n {
        let choice = g.rng.gen_range(0..10);
        let line = if choice < 6 || actions.is_empty() {
            g.stmt(0, false, false)
        } else if choice < 8 && has_table {
            "tbl.apply();".to_string()
        } else {
            let (a, _) = &actions[g.rng.gen_range(0..actions.len())];
            let lit = g.rng.gen_range(0..=255);
            format!("{a}(8w{lit});")
        };
        let _ = writeln!(src, "        {line}");
    }
    src.push_str("    }\n}\n");

    // Random control plane for the table.
    let mut cp = ControlPlane::new();
    if has_table {
        for _ in 0..g.cfg.entries {
            let key = Value::bit(8, g.rng.gen_range(0..=255u32) as u128);
            let (action, _) = &actions[g.rng.gen_range(0..actions.len())];
            let arg = Value::bit(8, g.rng.gen_range(0..=255u32) as u128);
            cp.add_entry(
                "tbl",
                TableEntry::new(vec![KeyPattern::Exact(key)], action.clone(), vec![arg]),
            );
        }
    }

    GeneratedProgram { source: src, control_plane: cp, seed }
}

struct Gen<'r> {
    rng: &'r mut StdRng,
    cfg: &'r GenConfig,
}

impl Gen<'_> {
    /// Whether the next construct should respect the labels.
    fn safe(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.safe_bias)
    }

    fn any_var(&mut self) -> &'static str {
        VARS[self.rng.gen_range(0..VARS.len())].0
    }

    fn low_var(&mut self) -> &'static str {
        LOW_VARS[self.rng.gen_range(0..LOW_VARS.len())]
    }

    fn high_var(&mut self) -> &'static str {
        HIGH_VARS[self.rng.gen_range(0..HIGH_VARS.len())]
    }

    /// A random expression; returns `(text, touches_high)`.
    fn expr(&mut self, depth: usize, in_action: bool) -> (String, bool) {
        if depth >= 2 || self.rng.gen_bool(0.4) {
            return match self.rng.gen_range(0..4) {
                0 => (format!("8w{}", self.rng.gen_range(0..=255)), false),
                1 if in_action => ("cparg".to_string(), false),
                _ => {
                    let (name, high) = VARS[self.rng.gen_range(0..VARS.len())];
                    (name.to_string(), high)
                }
            };
        }
        let op = ["+", "-", "*", "&", "|", "^"][self.rng.gen_range(0..6)];
        let (lhs, lh) = self.expr(depth + 1, in_action);
        let (rhs, rh) = self.expr(depth + 1, in_action);
        (format!("({lhs} {op} {rhs})"), lh || rh)
    }

    /// A low-only expression (for label-respecting writes to low state).
    fn low_expr(&mut self, depth: usize, in_action: bool) -> String {
        if depth >= 2 || self.rng.gen_bool(0.4) {
            return match self.rng.gen_range(0..3) {
                0 => format!("8w{}", self.rng.gen_range(0..=255)),
                1 if in_action => "cparg".to_string(),
                _ => self.low_var().to_string(),
            };
        }
        let op = ["+", "-", "*", "&", "|", "^"][self.rng.gen_range(0..6)];
        let lhs = self.low_expr(depth + 1, in_action);
        let rhs = self.low_expr(depth + 1, in_action);
        format!("({lhs} {op} {rhs})")
    }

    fn guard(&mut self, depth: usize, in_action: bool) -> (String, bool) {
        let op = ["==", "!=", "<", ">", "<=", ">="][self.rng.gen_range(0..6)];
        let (lhs, lh) = self.expr(depth + 1, in_action);
        let (rhs, rh) = self.expr(depth + 1, in_action);
        (format!("{lhs} {op} {rhs}"), lh || rh)
    }

    /// A low guard for label-respecting conditionals in low contexts.
    fn low_guard(&mut self, depth: usize, in_action: bool) -> String {
        let op = ["==", "!=", "<", ">", "<=", ">="][self.rng.gen_range(0..6)];
        let lhs = self.low_expr(depth + 1, in_action);
        let rhs = self.low_expr(depth + 1, in_action);
        format!("{lhs} {op} {rhs}")
    }

    fn stmt(&mut self, depth: usize, ctx_high: bool, in_action: bool) -> String {
        let roll = self.rng.gen_range(0..10);
        if roll < 6 || depth >= self.cfg.max_depth {
            return self.assignment(ctx_high, in_action);
        }
        if roll < 9 {
            // Conditionals. In safe mode a high context keeps a high
            // context; a low context may still open a high region (legal
            // as long as the branches only write high — enforced by
            // passing ctx_high downwards).
            let (guard, guard_high) = if self.safe() && !ctx_high && self.rng.gen_bool(0.6) {
                (self.low_guard(1, in_action), false)
            } else {
                self.guard(1, in_action)
            };
            let inner_ctx = ctx_high || guard_high;
            let then = self.stmt(depth + 1, inner_ctx, in_action);
            return if self.rng.gen_bool(0.5) {
                let els = self.stmt(depth + 1, inner_ctx, in_action);
                format!("if ({guard}) {{ {then} }} else {{ {els} }}")
            } else {
                format!("if ({guard}) {{ {then} }}")
            };
        }
        // Exits leak the context through the signal unless at ⊥.
        if ctx_high && self.safe() {
            return self.assignment(ctx_high, in_action);
        }
        "exit;".to_string()
    }

    fn assignment(&mut self, ctx_high: bool, in_action: bool) -> String {
        if self.safe() {
            if ctx_high {
                // Only secret state may change in a secret context.
                let target = self.high_var();
                let (value, _) = self.expr(0, in_action);
                format!("{target} = {value};")
            } else if self.rng.gen_bool(0.5) {
                // Low target needs a low source.
                let target = self.low_var();
                let value = self.low_expr(0, in_action);
                format!("{target} = {value};")
            } else {
                // High targets accept anything.
                let target = self.high_var();
                let (value, _) = self.expr(0, in_action);
                format!("{target} = {value};")
            }
        } else {
            let target = self.any_var();
            let (value, _) = self.expr(0, in_action);
            format!("{target} = {value};")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_typeck::{check_source, CheckOptions};

    #[test]
    fn generated_programs_parse_and_base_check() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let gp = random_program(seed, &cfg);
            check_source(&gp.source, &CheckOptions::base()).unwrap_or_else(|e| {
                panic!("seed {seed} failed the base checker: {e:?}\n{}", gp.source)
            });
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = GenConfig::default();
        let a = random_program(7, &cfg);
        let b = random_program(7, &cfg);
        assert_eq!(a.source, b.source);
        assert_eq!(a.control_plane, b.control_plane);
    }

    #[test]
    fn generator_produces_both_accepted_and_rejected_programs() {
        let cfg = GenConfig::default();
        let mut accepted = 0;
        let mut rejected = 0;
        for seed in 0..200 {
            let gp = random_program(seed, &cfg);
            match check_source(&gp.source, &CheckOptions::ifc()) {
                Ok(_) => accepted += 1,
                Err(_) => rejected += 1,
            }
        }
        assert!(accepted >= 5, "generator too leaky: only {accepted}/200 accepted");
        assert!(rejected >= 5, "generator too tame: only {rejected}/200 rejected");
    }

    #[test]
    fn high_safe_bias_mostly_accepts() {
        let cfg = GenConfig::default().with_safe_bias(1.0);
        let mut accepted = 0;
        for seed in 0..100 {
            let gp = random_program(seed, &cfg);
            if check_source(&gp.source, &CheckOptions::ifc()).is_ok() {
                accepted += 1;
            }
        }
        assert!(accepted >= 80, "safe_bias=1.0 accepted only {accepted}/100");
    }

    #[test]
    fn zero_safe_bias_mostly_rejects() {
        let cfg = GenConfig::default().with_safe_bias(0.0);
        let mut rejected = 0;
        for seed in 0..100 {
            let gp = random_program(seed, &cfg);
            if check_source(&gp.source, &CheckOptions::ifc()).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected >= 80, "safe_bias=0.0 rejected only {rejected}/100");
    }
}
