//! Low-equivalence of values (Definition 4.1 / C.4 of the paper).
//!
//! Two stores are *below-pc equivalent* at observation level `l` when every
//! location whose label is `⊑ l` holds equal values. Here we implement the
//! value-level version: walk a resolved security type together with two
//! values and compare exactly the scalar leaves labeled `⊑ l`
//! (Definition C.6 clauses 2–3).
//!
//! Types are pooled ids, so every walk goes through the program's shared
//! [`TyCtx`]; field traversal is symbol-keyed, and names are resolved back
//! to strings only when a [`Difference`] is actually reported.

use p4bid_ast::pool::TyCtx;
use p4bid_ast::sectype::{SecTy, Ty};
use p4bid_interp::Value;
use p4bid_lattice::{Label, Lattice};
use rand::Rng;

/// A difference found between two values at an observable (`⊑ l`) leaf.
///
/// `left`/`right` are scalar leaves on the usual paths (and render fully
/// via `Display`); only the structural-mismatch fallbacks (a field missing
/// from a hand-built value, a non-stack where a stack was expected) store
/// whole compound values, whose field names render as raw symbols — use
/// [`Value::display_with`] with the program's interner for full names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Difference {
    /// Dotted path from the root (e.g. `hdr.ipv4.ttl` or `arr[2]`).
    pub path: String,
    /// The value in run A.
    pub left: Value,
    /// The value in run B.
    pub right: Value,
}

impl std::fmt::Display for Difference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} ≠ {}", self.path, self.left, self.right)
    }
}

/// Collects all differences between `a` and `b` at leaves observable at
/// level `l` (label `⊑ l`). An empty result means the values are
/// low-equivalent.
#[must_use]
pub fn observable_differences(
    ctx: &TyCtx,
    lat: &Lattice,
    l: Label,
    ty: SecTy,
    a: &Value,
    b: &Value,
) -> Vec<Difference> {
    let mut out = Vec::new();
    walk(ctx, lat, l, ty, a, b, String::new(), &mut out);
    out
}

/// Whether `a` and `b` agree on everything observable at level `l`.
#[must_use]
pub fn low_equal(ctx: &TyCtx, lat: &Lattice, l: Label, ty: SecTy, a: &Value, b: &Value) -> bool {
    observable_differences(ctx, lat, l, ty, a, b).is_empty()
}

#[allow(clippy::too_many_arguments)]
fn walk(
    ctx: &TyCtx,
    lat: &Lattice,
    l: Label,
    ty: SecTy,
    a: &Value,
    b: &Value,
    path: String,
    out: &mut Vec<Difference>,
) {
    match ctx.types.kind(ty.ty) {
        Ty::Bool | Ty::Int | Ty::Bit(_) => {
            if lat.leq(ty.label, l) && a != b {
                out.push(Difference { path, left: a.clone(), right: b.clone() });
            }
        }
        Ty::Record(fields) | Ty::Header(fields) => {
            for &(fsym, fty) in fields.iter() {
                let (Some(av), Some(bv)) = (a.field(fsym), b.field(fsym)) else {
                    let name = ctx.syms.resolve(fsym);
                    out.push(Difference {
                        path: format!("{path}.{name}"),
                        left: a.clone(),
                        right: b.clone(),
                    });
                    continue;
                };
                let name = ctx.syms.resolve(fsym);
                let sub = if path.is_empty() { name.to_string() } else { format!("{path}.{name}") };
                walk(ctx, lat, l, fty, av, bv, sub, out);
            }
        }
        Ty::Stack(elem, n) => {
            let elem = *elem;
            let (Value::Stack(av), Value::Stack(bv)) = (a, b) else {
                out.push(Difference { path, left: a.clone(), right: b.clone() });
                return;
            };
            for i in 0..(*n as usize).min(av.len()).min(bv.len()) {
                walk(ctx, lat, l, elem, &av[i], &bv[i], format!("{path}[{i}]"), out);
            }
        }
        // Unit / match kinds / closures carry no observable data.
        Ty::Unit | Ty::MatchKind | Ty::Table(_) | Ty::Function(_) => {}
    }
}

/// Generates a uniformly random value of a resolved type (headers valid,
/// ints kept small so arithmetic stays readable in witnesses).
pub fn random_value<R: Rng>(rng: &mut R, ctx: &TyCtx, ty: SecTy) -> Value {
    match ctx.types.kind(ty.ty) {
        Ty::Bool => Value::Bool(rng.gen()),
        Ty::Int => Value::Int(rng.gen_range(0..=255)),
        Ty::Bit(w) => {
            let raw: u128 = rng.gen();
            Value::bit(*w, raw)
        }
        Ty::Unit => Value::Unit,
        Ty::Record(fields) => {
            Value::Record(fields.iter().map(|&(n, t)| (n, random_value(rng, ctx, t))).collect())
        }
        Ty::Header(fields) => Value::Header {
            valid: true,
            fields: fields.iter().map(|&(n, t)| (n, random_value(rng, ctx, t))).collect(),
        },
        Ty::Stack(elem, n) => {
            let elem = *elem;
            Value::Stack((0..*n).map(|_| random_value(rng, ctx, elem)).collect())
        }
        // Symbol 0 is the `TyCtx` interner's reserved empty-string sentinel.
        Ty::MatchKind => Value::MatchKind(p4bid_ast::Symbol::from_raw(0)),
        Ty::Table(_) | Ty::Function(_) => Value::Unit,
    }
}

/// Returns a copy of `value` with every scalar leaf whose label is *not*
/// `⊑ l` re-randomized. The result is low-equivalent to the input by
/// construction — exactly the paired initial stores of Definition 4.2.
pub fn scramble_unobservable<R: Rng>(
    rng: &mut R,
    ctx: &TyCtx,
    lat: &Lattice,
    l: Label,
    ty: SecTy,
    value: &Value,
) -> Value {
    match ctx.types.kind(ty.ty) {
        Ty::Bool | Ty::Int | Ty::Bit(_) => {
            if lat.leq(ty.label, l) {
                value.clone()
            } else {
                random_value(rng, ctx, ty)
            }
        }
        Ty::Record(fields) => Value::Record(
            fields
                .iter()
                .map(|&(n, t)| {
                    let v = value.field(n).cloned().unwrap_or_else(|| Value::init(&ctx.types, t));
                    (n, scramble_unobservable(rng, ctx, lat, l, t, &v))
                })
                .collect(),
        ),
        Ty::Header(fields) => Value::Header {
            valid: true,
            fields: fields
                .iter()
                .map(|&(n, t)| {
                    let v = value.field(n).cloned().unwrap_or_else(|| Value::init(&ctx.types, t));
                    (n, scramble_unobservable(rng, ctx, lat, l, t, &v))
                })
                .collect(),
        },
        Ty::Stack(elem, n) => {
            let elem = *elem;
            let elems = match value {
                Value::Stack(vs) => vs.clone(),
                _ => (0..*n).map(|_| Value::init(&ctx.types, elem)).collect(),
            };
            Value::Stack(
                elems.iter().map(|v| scramble_unobservable(rng, ctx, lat, l, elem, v)).collect(),
            )
        }
        Ty::Unit | Ty::MatchKind | Ty::Table(_) | Ty::Function(_) => value.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_ast::intern::Symbol;
    use p4bid_ast::sectype::FieldList;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_point_ctx() -> (TyCtx, SecTy, Symbol, Symbol, Lattice) {
        let lat = Lattice::two_point();
        let mut ctx = TyCtx::new();
        let pub_f = ctx.syms.intern("pub");
        let sec_f = ctx.syms.intern("sec");
        let bit8 = ctx.types.bit(8);
        let hdr = ctx.types.header(FieldList::new(vec![
            (pub_f, SecTy::bottom(bit8, &lat)),
            (sec_f, SecTy::new(bit8, lat.top())),
        ]));
        let ty = SecTy::bottom(hdr, &lat);
        (ctx, ty, pub_f, sec_f, lat)
    }

    fn hdr(pub_f: Symbol, sec_f: Symbol, p: u128, s: u128) -> Value {
        Value::Header {
            valid: true,
            fields: vec![(pub_f, Value::bit(8, p)), (sec_f, Value::bit(8, s))],
        }
    }

    #[test]
    fn differences_only_at_observable_leaves() {
        let (ctx, ty, pf, sf, lat) = two_point_ctx();
        // Secret fields may differ freely.
        assert!(low_equal(&ctx, &lat, lat.bottom(), ty, &hdr(pf, sf, 1, 10), &hdr(pf, sf, 1, 20)));
        // Public fields may not.
        let diffs = observable_differences(
            &ctx,
            &lat,
            lat.bottom(),
            ty,
            &hdr(pf, sf, 1, 10),
            &hdr(pf, sf, 2, 10),
        );
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "pub");
        // A top observer sees everything.
        assert!(!low_equal(&ctx, &lat, lat.top(), ty, &hdr(pf, sf, 1, 10), &hdr(pf, sf, 1, 20)));
    }

    #[test]
    fn diamond_observers() {
        let lat = Lattice::diamond();
        let a = lat.label("A").unwrap();
        let b = lat.label("B").unwrap();
        let mut ctx = TyCtx::new();
        let fa = ctx.syms.intern("fa");
        let fb = ctx.syms.intern("fb");
        let bit8 = ctx.types.bit(8);
        let rec = ctx
            .types
            .record(FieldList::new(vec![(fa, SecTy::new(bit8, a)), (fb, SecTy::new(bit8, b))]));
        let ty = SecTy::bottom(rec, &lat);
        let mk =
            |x: u128, y: u128| Value::Record(vec![(fa, Value::bit(8, x)), (fb, Value::bit(8, y))]);
        // An A-observer sees fa but not fb.
        assert!(low_equal(&ctx, &lat, a, ty, &mk(1, 5), &mk(1, 9)));
        assert!(!low_equal(&ctx, &lat, a, ty, &mk(1, 5), &mk(2, 5)));
        // And symmetrically for B.
        assert!(low_equal(&ctx, &lat, b, ty, &mk(3, 5), &mk(4, 5)));
    }

    #[test]
    fn stack_differences_have_indexed_paths() {
        let lat = Lattice::two_point();
        let mut ctx = TyCtx::new();
        let bit8 = ctx.types.bit(8);
        let stack = ctx.types.stack(SecTy::bottom(bit8, &lat), 3);
        let ty = SecTy::bottom(stack, &lat);
        let a = Value::Stack(vec![Value::bit(8, 0), Value::bit(8, 1), Value::bit(8, 2)]);
        let b = Value::Stack(vec![Value::bit(8, 0), Value::bit(8, 9), Value::bit(8, 2)]);
        let diffs = observable_differences(&ctx, &lat, lat.bottom(), ty, &a, &b);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "[1]");
    }

    #[test]
    fn scramble_preserves_low_parts() {
        let (ctx, ty, pf, sf, lat) = two_point_ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let orig = hdr(pf, sf, 42, 13);
        for _ in 0..50 {
            let scrambled = scramble_unobservable(&mut rng, &ctx, &lat, lat.bottom(), ty, &orig);
            assert!(low_equal(&ctx, &lat, lat.bottom(), ty, &orig, &scrambled));
            assert_eq!(scrambled.field(pf), Some(&Value::bit(8, 42)));
        }
    }

    #[test]
    fn scramble_eventually_changes_high_parts() {
        let (ctx, ty, pf, sf, lat) = two_point_ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let orig = hdr(pf, sf, 42, 13);
        let changed = (0..50).any(|_| {
            let s = scramble_unobservable(&mut rng, &ctx, &lat, lat.bottom(), ty, &orig);
            s.field(sf) != Some(&Value::bit(8, 13))
        });
        assert!(changed, "a 50-sample scramble should perturb an 8-bit secret");
    }

    #[test]
    fn random_values_have_the_right_shape() {
        let (ctx, ty, _, _, _) = two_point_ctx();
        let mut rng = StdRng::seed_from_u64(0);
        let v = random_value(&mut rng, &ctx, ty);
        let Value::Header { valid, fields } = &v else { panic!() };
        assert!(valid);
        assert_eq!(fields.len(), 2);
        assert!(matches!(fields[0].1, Value::Bit { width: 8, .. }));
    }

    #[test]
    fn difference_display() {
        let d =
            Difference { path: "hdr.ttl".into(), left: Value::bit(8, 1), right: Value::bit(8, 2) };
        assert_eq!(d.to_string(), "hdr.ttl: 8w1 ≠ 8w2");
    }
}
