//! §5.3 — integrity: preventing manipulation in resource allocation.
//!
//! Labels flipped to the integrity reading: `high` = untrusted (client
//! controlled), `low` = trusted (switch state). A gateway boosts the
//! priority of latency-sensitive applications — but deriving the trusted
//! priority from the untrusted, client-claimed `appID` lets any client
//! inflate its own service class. The fix keys the allocation on the
//! destination address, which clients cannot forge without losing their
//! own traffic.
//!
//! Run with `cargo run --example resource_allocation`.

use p4bid::ni::{check_non_interference, NiConfig, NiOutcome};
use p4bid::{check, render_diagnostics, CheckOptions};

fn main() {
    let cs = p4bid::corpus::APP;
    let cp = p4bid::corpus::demo_control_plane("App");

    println!("== P4BID flags the integrity violation (Listing 5) ==");
    let diags = check(cs.insecure, &CheckOptions::ifc()).expect_err("rejected");
    print!("{}", render_diagnostics(cs.insecure, &diags));
    println!(
        "\n  reading: untrusted (high) appID selects a write to the trusted (low) \
         priority — E-TABLE-KEY-FLOW is the integrity analogue of the cache leak."
    );

    println!("\n== Demonstrating the manipulation ==");
    // Two packets that agree on all *trusted* fields but claim different
    // app ids end up with different priorities: the untrusted input
    // influenced a trusted output.
    let leaky = check(cs.insecure, &CheckOptions::permissive()).expect("permissive");
    let config = NiConfig::default().with_runs(300);
    match check_non_interference(&leaky, &cp, "App_Ingress", &config) {
        NiOutcome::Leak(w) => {
            print!("{w}");
            println!("  → a malicious client raises its own priority by lying about appID.");
        }
        other => panic!("expected manipulation witness, got {other:?}"),
    }

    println!("\n== The dstAddr-keyed allocation is accepted and manipulation-free ==");
    let fixed = check(cs.secure, &CheckOptions::ifc()).expect("accepted");
    match check_non_interference(&fixed, &cp, "App_Ingress", &config) {
        NiOutcome::Holds { runs } => {
            println!("no untrusted influence on trusted outputs across {runs} pairs");
        }
        other => panic!("secure variant must hold: {other:?}"),
    }
}
