//! §5.4 — network isolation with the diamond lattice (Figure 8).
//!
//! Alice and Bob run dataplane programs on separate switches of a shared
//! private network. Packet headers carry fields for each tenant, operator
//! telemetry, and pre-configured routing data. The diamond lattice
//! `bot ⊑ A, B ⊑ top` expresses the policy:
//!
//! * Alice's fields (`A`) and Bob's fields (`B`) are mutually untouchable;
//! * telemetry (`top`) may be *written* by anyone, *read* by no tenant;
//! * routing data (`bot`) may be *read* by anyone, *written* by no tenant.
//!
//! Checking Alice's control at `pc = A` and Bob's at `pc = B` enforces the
//! write restrictions (§5.4: "Alice can only write to fields labeled A or
//! ⊤").
//!
//! Run with `cargo run --example isolation`.

use p4bid::lattice::Lattice;
use p4bid::ni::{check_non_interference, NiConfig, NiOutcome};
use p4bid::{check, render_diagnostics, CheckOptions};

fn main() {
    let cs = p4bid::corpus::LATTICE;
    let cp = p4bid::corpus::demo_control_plane("Lattice");

    println!("== The Figure 8b diamond lattice ==");
    let diamond = Lattice::diamond();
    println!("  {diamond}");
    let a = diamond.label("A").unwrap();
    let b = diamond.label("B").unwrap();
    println!("  A ⊑ B? {}   A ⊔ B = {}", diamond.leq(a, b), diamond.name(diamond.join(a, b)));

    println!("\n== Listing 6: Alice touches Bob's data and reads telemetry ==");
    let diags = check(cs.insecure, &CheckOptions::ifc()).expect_err("rejected");
    print!("{}", render_diagnostics(cs.insecure, &diags));

    println!("== Listing 7: the isolation-respecting programs are accepted ==");
    let typed = check(cs.secure, &CheckOptions::ifc()).expect("accepted");
    for ctrl in &typed.controls {
        println!("  control {:<16} checked at pc = {}", ctrl.name, typed.lattice.name(ctrl.pc));
    }

    println!("\n== What does Bob observe of the buggy Alice? ==");
    // Observation level B: Bob sees bot- and B-labeled fields. In the
    // buggy program Alice writes her A-labeled data into Bob's field, so
    // two runs differing only in A/top fields produce different
    // B-observations.
    let leaky = check(cs.insecure, &CheckOptions::permissive()).expect("permissive");
    let config = NiConfig::default().with_runs(300).observing("B");
    match check_non_interference(&leaky, &cp, "Alice_Ingress", &config) {
        NiOutcome::Leak(w) => {
            print!("{w}");
            println!("  → Alice's secret flowed into a field Bob can read: isolation broken.");
        }
        other => panic!("expected isolation violation, got {other:?}"),
    }

    println!("\n== The fixed Alice is invisible to Bob ==");
    match check_non_interference(&typed, &cp, "Alice_Ingress", &config) {
        NiOutcome::Holds { runs } => {
            println!("Bob's view unchanged across {runs} scrambles of Alice's data");
        }
        other => panic!("secure Alice must hold: {other:?}"),
    }

    // And Bob's telemetry increments are fine for both tenants' views.
    match check_non_interference(
        &typed,
        &cp,
        "Bob_Ingress",
        &NiConfig::default().with_runs(200).observing("A"),
    ) {
        NiOutcome::Holds { runs } => {
            println!("Alice's view unchanged across {runs} runs of Bob's switch");
        }
        other => panic!("secure Bob must hold: {other:?}"),
    }
}
