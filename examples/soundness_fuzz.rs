//! Fuzzing the soundness theorem (Theorem 4.3).
//!
//! Generates random programs from the paper's fragment (most of them
//! leaky), typechecks each, and:
//!
//! * for every program the IFC checker **accepts**, runs the paired
//!   non-interference harness — a single observable difference would
//!   falsify the implementation of the soundness theorem;
//! * for every program it **rejects**, also runs the harness, measuring
//!   how often the rejection corresponds to an *empirically observable*
//!   leak (the type system is sound, not complete, so some rejected
//!   programs never actually leak).
//!
//! Run with `cargo run --release --example soundness_fuzz [N]`.

use p4bid::ni::{check_non_interference, random_program, GenConfig, NiConfig, NiOutcome};
use p4bid::{check, CheckOptions};

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let cfg = GenConfig::default();
    let ni_cfg = NiConfig::default().with_runs(40);

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut rejected_with_leak = 0u64;

    for seed in 0..n {
        let gp = random_program(seed, &cfg);
        match check(&gp.source, &CheckOptions::ifc()) {
            Ok(typed) => {
                accepted += 1;
                let out = check_non_interference(&typed, &gp.control_plane, "Fuzz", &ni_cfg);
                if let NiOutcome::Leak(w) = &out {
                    eprintln!("SOUNDNESS VIOLATION at seed {seed}:\n{}\n{w}", gp.source);
                    std::process::exit(1);
                }
                assert!(out.holds(), "evaluation error at seed {seed}: {out:?}");
            }
            Err(_) => {
                rejected += 1;
                // Run the rejected program permissively to see whether the
                // leak is observable.
                let typed = check(&gp.source, &CheckOptions::permissive())
                    .expect("generated programs are well-formed modulo labels");
                if let NiOutcome::Leak(_) =
                    check_non_interference(&typed, &gp.control_plane, "Fuzz", &ni_cfg)
                {
                    rejected_with_leak += 1;
                }
            }
        }
    }

    println!("soundness fuzzing over {n} random programs:");
    println!("  accepted by P4BID : {accepted:>5}   (all non-interfering — Theorem 4.3 holds)");
    println!("  rejected by P4BID : {rejected:>5}");
    println!(
        "  …of which observably leaky on 40 trials: {rejected_with_leak} \
         ({:.0}% — the rest are conservatively rejected, as expected of a \
         sound, incomplete type system)",
        100.0 * rejected_with_leak as f64 / rejected.max(1) as f64
    );
}
