//! §5.1 — D2R dataplane routing with priorities.
//!
//! D2R performs a breadth-first search over a preloaded topology entirely
//! in the data plane (the BFS loop is unrolled, since P4 has no loops).
//! The extension studied in the paper assigns higher priority to packets
//! that met more link failures — but the failure count is derived from the
//! secret `num_hops` field, so the public priority becomes an indirect
//! leak about the private network's reliability.
//!
//! Run with `cargo run --example d2r_routing`.

use p4bid::interp::{run_control, Value};
use p4bid::ni::{check_non_interference, run_pair, NiConfig, NiOutcome};
use p4bid::packet::{get_path, init_args, set_path};
use p4bid::topo::{check_topology, TopoManifest};
use p4bid::{check, render_diagnostics, CheckOptions};

fn main() {
    let cs = p4bid::corpus::D2R;
    let cp = p4bid::corpus::demo_control_plane("D2R");

    println!("== P4BID rejects priority-from-failures (Listing 3) ==");
    let diags = check(cs.insecure, &CheckOptions::ifc()).expect_err("rejected");
    print!("{}", render_diagnostics(cs.insecure, &diags));

    println!("\n== The tried-links proxy version typechecks ==");
    let typed = check(cs.secure, &CheckOptions::ifc()).expect("accepted");

    println!("\n== BFS forwarding: node 1 → 2 → 3 (dest 3) ==");
    let mut args = init_args(&typed, "D2R_Ingress").expect("control exists");
    let hdr = &mut args[0];
    assert!(set_path(&typed, hdr, "bfs.curr", Value::Int(1)));
    assert!(set_path(&typed, hdr, "bfs.next_node", Value::Int(3)));
    assert!(set_path(&typed, hdr, "ipv4.dstAddr", Value::Int(3)));
    assert!(set_path(&typed, hdr, "ipv4.ttl", Value::Int(64)));

    let out = run_control(&typed, &cp, "D2R_Ingress", args).expect("runs");
    let hdr_out = out.param("hdr").unwrap();
    println!(
        "  bfs.curr      = {} (reached the destination)",
        get_path(&typed, hdr_out, "bfs.curr").unwrap()
    );
    println!("  bfs.num_hops  = {}", get_path(&typed, hdr_out, "bfs.num_hops").unwrap());
    println!("  tried_links   = {}", get_path(&typed, hdr_out, "bfs.tried_links").unwrap());
    println!("  ipv4.priority = {}", get_path(&typed, hdr_out, "ipv4.priority").unwrap());
    println!(
        "  egress_spec   = {}",
        get_path(&typed, out.param("std_metadata").unwrap(), "egress_spec").unwrap()
    );

    println!("\n== Witnessing the leak in the insecure variant ==");
    // The leak sits behind the BFS completion check, which fully random
    // 32-bit packets essentially never reach — so craft the pair: two
    // packets already at their destination, identical in every public
    // field, differing only in the secret hop count.
    let leaky = check(cs.insecure, &CheckOptions::permissive()).expect("permissive");
    let mut at_dest = init_args(&leaky, "D2R_Ingress").expect("control exists");
    let h = &mut at_dest[0];
    assert!(set_path(&leaky, h, "bfs.curr", Value::Int(3)));
    assert!(set_path(&leaky, h, "bfs.next_node", Value::Int(3)));
    assert!(set_path(&leaky, h, "ipv4.dstAddr", Value::Int(3)));
    assert!(set_path(&leaky, h, "bfs.tried_links", Value::Int(0b111)));
    assert!(set_path(&leaky, h, "bfs.num_hops", Value::Int(0))); // secret: 0 failures
    let mut unlucky = at_dest.clone();
    assert!(set_path(&leaky, &mut unlucky[0], "bfs.num_hops", Value::Int(255))); // secret differs

    let (diffs, _) = run_pair(&leaky, &cp, "D2R_Ingress", leaky.lattice.bottom(), at_dest, unlucky)
        .expect("both packets run");
    assert!(!diffs.is_empty(), "the insecure D2R must leak on this pair");
    for d in &diffs {
        println!("  observable output differs at {d}");
    }
    println!(
        "  → identical public packets got different priorities: the secret \
         hop count is visible on the wire."
    );

    println!("\n== And its absence in the secure variant ==");
    let config = NiConfig::default().with_runs(300);
    match check_non_interference(&typed, &cp, "D2R_Ingress", &config) {
        NiOutcome::Holds { runs } => println!("non-interference held on {runs} pairs"),
        other => panic!("secure variant must hold: {other:?}"),
    }

    // The BFS topology itself, as a topology manifest: the three nodes
    // of the 1 → 2 → 3 walk become three switches, each running the D2R
    // program, composed by the fixpoint driver instead of checked one
    // file at a time.
    println!("\n== The BFS nodes as a checked topology ==");
    let chain = |node3: &str| {
        let manifest = TopoManifest::parse(&format!(
            r#"
            [switch node1]
            program = "d2r.p4"

            [link node1:p1 -> node2:p1]

            [switch node2]
            program = "d2r.p4"

            [link node2:p2 -> node3:p1]

            [switch node3]
            program = "{node3}"
            "#,
        ))
        .expect("manifest parses");
        manifest
            .resolve_with(|path| {
                Ok(if path == "d2r.p4" { cs.secure } else { cs.insecure }.to_string())
            })
            .expect("topology assembles")
    };

    let report = check_topology(&chain("d2r.p4"), &CheckOptions::ifc(), 2);
    print!("{}", report.render_table());
    assert!(report.all_ok(), "the all-secure chain must check");

    // Swap the last hop for the priority-from-failures variant: the
    // network report pinpoints the one switch that leaks.
    println!("\nwith the insecure variant on node3:");
    let report = check_topology(&chain("d2r_insecure.p4"), &CheckOptions::ifc(), 2);
    print!("{}", report.render_table());
    assert!(!report.all_ok(), "the leaking chain must be rejected");
    assert_eq!(report.rejected(), 1, "exactly the swapped switch rejects");
}
