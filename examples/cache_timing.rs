//! §5.2 — the in-network cache timing channel, end to end.
//!
//! A key-value cache on the switch answers hot queries locally and
//! escalates misses to the controller. An adversary who can time responses
//! learns whether a query hit the cache; the paper models this with an
//! explicit `low`-labeled `hit` flag. With a `high` (secret) query key,
//! the table's actions write public data selected by secret data.
//!
//! This example shows all three reproduction angles:
//!
//! 1. P4BID rejects the leaky program (`E-TABLE-KEY-FLOW`);
//! 2. the paired-execution harness produces a *concrete* leak witness —
//!    two packets with identical public fields whose `hit` flags differ;
//! 3. the repaired program typechecks and the harness finds no leak.
//!
//! Run with `cargo run --example cache_timing`.

use p4bid::ni::{check_non_interference, NiConfig, NiOutcome};
use p4bid::{check, render_diagnostics, CheckOptions};

fn main() {
    let cs = p4bid::corpus::CACHE;
    let cp = p4bid::corpus::demo_control_plane("Cache");

    println!("== 1. P4BID rejects the leaky cache (Listing 4) ==");
    let diags = check(cs.insecure, &CheckOptions::ifc())
        .expect_err("the secret-keyed cache must be rejected");
    print!("{}", render_diagnostics(cs.insecure, &diags));

    println!("\n== 2. Running the leaky cache anyway: a concrete witness ==");
    // Permissive mode keeps the labels (so the harness knows what a low
    // observer sees) but skips enforcement, letting us execute the bug.
    let leaky = check(cs.insecure, &CheckOptions::permissive()).expect("parses and base-checks");
    let config = NiConfig::default().with_runs(200);
    match check_non_interference(&leaky, &cp, cs.control, &config) {
        NiOutcome::Leak(witness) => {
            print!("{witness}");
            println!(
                "  → the adversary distinguishes cached from uncached queries: a \
                 one-bit-per-probe dictionary attack on the secret key."
            );
        }
        other => panic!("expected a leak witness, got {other:?}"),
    }

    println!("\n== 3. The repaired cache typechecks and leaks nothing ==");
    let fixed = check(cs.secure, &CheckOptions::ifc()).expect("the fix typechecks");
    match check_non_interference(&fixed, &cp, cs.control, &config) {
        NiOutcome::Holds { runs } => {
            println!("non-interference held on {runs} random low-equivalent packet pairs");
        }
        other => panic!("the secure cache must not leak: {other:?}"),
    }
}
