//! Quickstart: catch the paper's opening bug (Listings 1–2).
//!
//! A switch at the edge of a private network rewrites virtual addresses to
//! physical ones. Everything specific to the local topology is labeled
//! `high`; the externally visible `ipv4`/`eth` headers are `low`. Listing 1
//! accidentally stores the *local* TTL into the public header — P4BID
//! rejects it, and accepts the Listing 2 fix.
//!
//! Run with `cargo run --example quickstart`.

use p4bid::interp::{run_control, Value};
use p4bid::{check, render_diagnostics, CheckOptions};

fn main() {
    let insecure = p4bid::corpus::TOPOLOGY.insecure;
    let secure = p4bid::corpus::TOPOLOGY.secure;

    println!("== Checking the buggy program (Listing 1) ==");
    match check(insecure, &CheckOptions::ifc()) {
        Ok(_) => unreachable!("the buggy program must be rejected"),
        Err(diags) => {
            print!("{}", render_diagnostics(insecure, &diags));
        }
    }

    println!("\n== Checking the fixed program (Listing 2) ==");
    let typed = check(secure, &CheckOptions::ifc()).expect("the fix typechecks");
    println!("accepted: {} control block(s) under lattice {}", typed.controls.len(), typed.lattice);

    println!("\n== Forwarding one packet through the fixed pipeline ==");
    let cp = p4bid::corpus::demo_control_plane("Topology");
    let b = Value::bit;
    let sy = |n: &str| typed.intern(n);
    let ipv4 = Value::Header {
        valid: true,
        fields: vec![
            (sy("ttl"), b(8, 64)),
            (sy("protocol"), b(8, 6)),
            (sy("srcAddr"), b(32, 0xC0A8_0001)),
            (sy("dstAddr"), b(32, 0x0A00_0001)),
        ],
    };
    let eth = Value::Header {
        valid: true,
        fields: vec![(sy("srcAddr"), b(48, 0x1111)), (sy("dstAddr"), b(48, 0))],
    };
    let local = Value::Header {
        valid: true,
        fields: vec![
            (sy("phys_dstAddr"), b(32, 0)),
            (sy("phys_ttl"), b(8, 0)),
            (sy("next_hop_MAC_addr"), b(48, 0)),
        ],
    };
    let hdr = Value::Record(vec![(sy("ipv4"), ipv4), (sy("eth"), eth), (sy("local_hdr"), local)]);
    let meta = Value::Record(vec![
        (sy("ingress_port"), b(9, 1)),
        (sy("egress_spec"), b(9, 0)),
        (sy("egress_port"), b(9, 0)),
        (sy("instance_type"), b(32, 0)),
        (sy("packet_length"), b(32, 128)),
        (sy("priority"), b(3, 0)),
    ]);

    let out =
        run_control(&typed, &cp, "Obfuscate_Ingress", vec![hdr, meta]).expect("the packet runs");
    let hdr_out = out.param("hdr").expect("hdr parameter");
    let meta_out = out.param("std_metadata").expect("std_metadata parameter");
    println!(
        "  local_hdr.phys_dstAddr = {}",
        hdr_out.field(sy("local_hdr")).unwrap().field(sy("phys_dstAddr")).unwrap()
    );
    println!(
        "  ipv4.ttl               = {} (public ttl only decremented, not overwritten)",
        hdr_out.field(sy("ipv4")).unwrap().field(sy("ttl")).unwrap()
    );
    println!("  egress_spec            = {}", meta_out.field(sy("egress_spec")).unwrap());
}
