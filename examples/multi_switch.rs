//! The Figure 8a topology, end to end: a packet traverses Alice's switch
//! and then Bob's switch, sharing one header. Telemetry accumulates across
//! hops; each tenant's control was typechecked at its own `pc`, so neither
//! hop can disturb the other tenant's fields.
//!
//! Run with `cargo run --example multi_switch`.

use p4bid::interp::{run_control, Value};
use p4bid::packet::{get_path, init_args, set_path};
use p4bid::topo::{check_topology, TopoManifest};
use p4bid::{check, CheckOptions};

fn main() {
    let cs = p4bid::corpus::LATTICE;
    let typed = check(cs.secure, &CheckOptions::ifc()).expect("both switches typecheck");
    let cp = p4bid::corpus::demo_control_plane("Lattice");

    println!("checked controls:");
    for c in &typed.controls {
        println!("  {:<14} at pc = {}", c.name, typed.lattice.name(c.pc));
    }

    // Build the shared packet.
    let mut args = init_args(&typed, "Alice_Ingress").expect("params");
    let hdr = &mut args[0];
    assert!(set_path(&typed, hdr, "alice_data.data", Value::Int(0x0A11)));
    assert!(set_path(&typed, hdr, "bob_data.data", Value::Int(0x0B0B)));
    assert!(set_path(&typed, hdr, "eth.dstAddr", Value::Int(0x42)));

    let snapshot = |label: &str, hdr: &Value| {
        println!(
            "{label}: alice={} bob={} telem={} eth={}",
            get_path(&typed, hdr, "alice_data.data").unwrap(),
            get_path(&typed, hdr, "bob_data.data").unwrap(),
            get_path(&typed, hdr, "telem.hops").unwrap(),
            get_path(&typed, hdr, "eth.dstAddr").unwrap(),
        );
    };
    snapshot("\ningress        ", &args[0]);

    // Hop 1: Alice's switch.
    let out = run_control(&typed, &cp, "Alice_Ingress", args).expect("alice runs");
    let mut args =
        vec![out.param("hdr").unwrap().clone(), out.param("std_metadata").unwrap().clone()];
    snapshot("after Alice    ", &args[0]);
    let bob_before = get_path(&typed, &args[0], "bob_data.data").unwrap().clone();

    // Hop 2: Bob's switch (increments telemetry, keyed on eth).
    // The demo control plane matches any eth key.
    let out = run_control(&typed, &cp, "Bob_Ingress", std::mem::take(&mut args)).expect("bob runs");
    let hdr = out.param("hdr").unwrap();
    snapshot("after Bob      ", hdr);

    // Isolation in action: Alice's hop never touched Bob's data, Bob's hop
    // never touched Alice's, and both may bump the shared telemetry.
    assert_eq!(get_path(&typed, hdr, "bob_data.data"), Some(&bob_before));
    println!(
        "\nisolation held across the topology: Bob's field was untouched by \
         Alice's switch, and the ⊤-labeled telemetry counted both hops."
    );

    // The same deployment, checked at network scale: both hops as real
    // switches in a topology manifest, composed by the fixpoint driver.
    // With no ingress seeds, each switch checks in a public context and
    // the network accepts.
    const DIAMOND: &str = "bot < A; bot < B; A < top; B < top";
    let manifest = TopoManifest::parse(&format!(
        r#"
        lattice = "{DIAMOND}"

        [switch alice]
        program = "tenants.p4"
        lattice = "{DIAMOND}"

        [link alice:p1 -> bob:p1]

        [switch bob]
        program = "tenants.p4"
        lattice = "{DIAMOND}"
        "#,
    ))
    .expect("manifest parses");
    let topo = manifest.resolve_with(|_| Ok(cs.secure.to_string())).expect("topology assembles");
    let report = check_topology(&topo, &CheckOptions::ifc(), 2);
    println!("\nas a two-switch topology:");
    print!("{}", report.render_table());
    assert!(report.all_ok(), "the public deployment must check");

    // Now drop Alice's switch inside her secret zone: the `A` ingress
    // seed floors both controls at pc = A, and Bob's `@pc(B)` control
    // cannot honestly run there — the fixpoint report pinpoints the
    // switch, and the seeded traffic also breaches the public wire
    // contract toward Bob.
    let manifest = TopoManifest::parse(&format!(
        r#"
        lattice = "{DIAMOND}"

        [switch alice]
        program = "tenants.p4"
        ingress = "A"
        lattice = "{DIAMOND}"

        [link alice:p1 -> bob:p1]
        contract = "bot"

        [switch bob]
        program = "tenants.p4"
        lattice = "{DIAMOND}"
        "#,
    ))
    .expect("manifest parses");
    let topo = manifest.resolve_with(|_| Ok(cs.secure.to_string())).expect("topology assembles");
    let report = check_topology(&topo, &CheckOptions::ifc(), 2);
    println!("\nseeding Alice's switch with her secret zone rejects the deployment:");
    print!("{}", report.render_table());
    assert!(!report.all_ok(), "the seeded deployment must be rejected");
}
