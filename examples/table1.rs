//! The evaluation driver: regenerates **Table 1** and the §5 case-study
//! matrix, printing paper-vs-measured in one place.
//!
//! Run with `cargo run --release --example table1`. (Release mode is worth
//! it: Table 1 is a timing experiment.)

use p4bid::report::{case_study_matrix, measure_table1, render_matrix, render_table1};

/// The paper's Table 1 (milliseconds on the authors' machine, stock p4c
/// vs their patched p4c).
const PAPER_TABLE1: &[(&str, f64, f64)] = &[
    ("D2R", 534.0, 599.0),
    ("App", 593.0, 600.0),
    ("Lattice", 495.0, 527.0),
    ("Topology", 554.0, 591.0),
    ("Cache", 538.0, 550.0),
    ("Average", 543.0, 573.0),
];

fn main() {
    println!("Paper's Table 1 (p4c substrate, authors' machine):");
    println!(
        "{:<10} {:>18} {:>18} {:>10}",
        "Program", "Unannotated, p4c", "Annotated, P4BID", "Overhead"
    );
    for (name, base, ifc) in PAPER_TABLE1 {
        println!("{:<10} {:>18.0} {:>18.0} {:>9.1}%", name, base, ifc, (ifc - base) / base * 100.0);
    }

    println!("\nMeasured on this substrate (median of 50 parse+check runs):");
    let rows = measure_table1(50);
    print!("{}", render_table1(&rows));
    let avg = rows.last().expect("average row");
    println!(
        "\nShape check: IFC overhead is a small constant factor \
         (paper ≈ 5.5%, measured ≈ {:.1}%). Absolute times differ because \
         the substrate is this workspace's front end, not the ~500 kLoC p4c.",
        avg.overhead_percent()
    );

    println!("\n{}", render_matrix(&case_study_matrix()));
}
