//! Workspace facade for the P4BID reproduction.
//!
//! This package exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); the library API
//! lives in the [`p4bid`] crate and its sub-crates. See the repository
//! README for the tour.

#![forbid(unsafe_code)]

pub use p4bid;
