//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so this crate provides
//! the `Rng` / `SeedableRng` traits and a deterministic [`rngs::StdRng`]
//! with upstream-compatible call sites: `StdRng::seed_from_u64(s)`,
//! `rng.gen()`, `rng.gen_range(lo..hi)` / `rng.gen_range(lo..=hi)`, and
//! `rng.gen_bool(p)`. The generator is SplitMix64 — statistically fine
//! for fuzzing and property testing, not cryptographic. Streams do NOT
//! match upstream `StdRng` bit-for-bit; nothing in the workspace depends
//! on the exact stream, only on seeded determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore`
/// (the stand-in for upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // One or two words, truncated; uniform for every width.
                if (<$t>::BITS as u32) <= 64 {
                    rng.next_u64() as $t
                } else {
                    let hi = (rng.next_u64() as u128) << 64;
                    (hi | rng.next_u64() as u128) as $t
                }
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                let raw = <$u as Standard>::sample(rng);
                lo.wrapping_add((raw % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                let raw = <$u as Standard>::sample(rng);
                if span == 0 {
                    // Full-width range: every raw value is in range.
                    return raw as $t;
                }
                lo.wrapping_add((raw % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

/// Ranges that `Rng::gen_range` can sample from.
///
/// Implemented generically (one blanket impl per range shape) so type
/// inference can flow from the range's element type to the result type,
/// exactly as upstream `rand` does.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing random sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        // 53 random mantissa bits, exactly like upstream's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush; one add + two xor-shift-multiplies per word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=255);
            assert!((0..=255).contains(&w));
            let x = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn u128_uses_both_words() {
        let mut rng = StdRng::seed_from_u64(5);
        let any_high = (0..100).any(|_| rng.gen::<u128>() >> 64 != 0);
        assert!(any_high, "high half of u128 must be populated");
    }
}
