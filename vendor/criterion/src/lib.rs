//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses.
//!
//! The build environment has no registry access, so this crate provides
//! the benchmark-harness surface the `p4bid-bench` targets compile
//! against: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock timing: one warm-up call sizes the
//! iteration count to roughly `CRITERION_MEASURE_MS` milliseconds
//! (default 100) and the mean ns/iteration is printed, with derived
//! element/byte throughput when configured. There is no statistical
//! analysis, no HTML report, and no saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark, in milliseconds.
fn measure_ms() -> u64 {
    std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(100)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up call doubles as the iteration-count estimate.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let budget = Duration::from_millis(measure_ms());
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<50} time: {:>12}/iter", human_ns(mean_ns));
    match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let rate = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("  thrpt: {rate:.0} elem/s"));
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            let rate = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            line.push_str(&format!("  thrpt: {rate:.2} MiB/s"));
        }
        _ => {}
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for derived rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), b.mean_ns, self.throughput);
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.into()), b.mean_ns, self.throughput);
    }

    /// Finishes the group (reporting is per-benchmark; nothing to do).
    pub fn finish(self) {}
}

/// The benchmark driver passed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&id.into().to_string(), b.mean_ns, None);
        self
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups (ignores harness args).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        b.iter(|| black_box(2u64 + 2));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("f", |b| b.iter(|| black_box(1)));
        g.bench_with_input(BenchmarkId::new("p", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("base", 16).to_string(), "base/16");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
