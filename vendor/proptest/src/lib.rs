//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no registry access, so this crate provides
//! the `proptest!` test macro, the `Strategy` trait, and the strategies
//! the workspace's property tests actually exercise: integer ranges,
//! tuples, `Just`, `any::<T>()`, `prop_oneof!`, `collection::vec`, and
//! regex-like string patterns (a supported subset: `.`, `[a-z]` classes,
//! literal atoms, with `{a,b}` / `{a}` / `*` / `+` / `?` quantifiers).
//!
//! Semantics match upstream where it matters for these tests:
//! deterministic per-test seeding, a configurable number of cases via
//! `PROPTEST_CASES` (default 64 here), `PROPTEST_SEED` to perturb the
//! seed, and `prop_assert*` macros that fail the case with a rendered
//! message. **No shrinking** is performed: a failing case reports its
//! case index and seed so it can be replayed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner plumbing used by the expansion of [`proptest!`].
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// A failed property-test case (carries the rendered message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Alias of [`TestCaseError::fail`], mirroring upstream.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::fail(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Number of cases to run per property (from `PROPTEST_CASES`,
    /// default 64).
    #[must_use]
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// Deterministic per-test RNG: a stable hash of the test path, mixed
    /// with `PROPTEST_SEED` when set. Returns the seed too so failures
    /// can report it.
    #[must_use]
    pub fn rng_for(test_path: &str) -> (StdRng, u64) {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_0001);
        // FNV-1a over the test path keeps distinct tests on distinct
        // streams even with the same PROPTEST_SEED.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = base ^ h;
        (StdRng::seed_from_u64(seed), seed)
    }
}

/// The [`Strategy`](strategy::Strategy) trait and the concrete strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values.
    ///
    /// Unlike upstream there is no value tree / shrinking; `generate`
    /// draws one value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Marker trait for `any::<T>()`: types with a canonical uniform
    /// strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

    /// The canonical strategy for a type (see [`any`]).
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical uniform strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Uniform choice among boxed strategies (the expansion of
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }

        /// A one-option union (the seed of a `prop_oneof!` chain).
        ///
        /// The generic-parameter form keeps integer-literal inference
        /// flowing from the first option to the rest, which plain
        /// `Box<dyn …>` casts would not.
        #[must_use]
        pub fn single<S: Strategy<Value = T> + 'static>(option: S) -> Self {
            Union { options: vec![Box::new(option)] }
        }

        /// Adds one more option.
        #[must_use]
        pub fn or<S: Strategy<Value = T> + 'static>(mut self, option: S) -> Self {
            self.options.push(Box::new(option));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let ix = rng.gen_range(0..self.options.len());
            self.options[ix].generate(rng)
        }
    }

    // ---- regex-subset string strategies ------------------------------

    /// One atom of the supported regex subset with its repetition range.
    #[derive(Debug, Clone)]
    struct Part {
        set: CharSet,
        min: usize,
        max: usize,
    }

    #[derive(Debug, Clone)]
    enum CharSet {
        /// `.` — any char except `\n`.
        Any,
        /// `[...]` or a literal — inclusive char ranges.
        Ranges(Vec<(char, char)>),
    }

    impl CharSet {
        fn sample(&self, rng: &mut StdRng) -> char {
            match self {
                CharSet::Any => loop {
                    // A mix of mostly-printable ASCII with occasional
                    // control and non-ASCII scalars, to exercise byte- vs
                    // char-index handling in lexers.
                    let c = match rng.gen_range(0u32..10) {
                        0..=5 => char::from(rng.gen_range(0x20u8..0x7F)),
                        6 | 7 => char::from(rng.gen_range(0x00u8..0x80)),
                        8 => char::from_u32(rng.gen_range(0x80u32..0x3000)).unwrap_or('¿'),
                        _ => match char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                            Some(c) => c,
                            None => continue, // surrogate gap; redraw
                        },
                    };
                    if c != '\n' {
                        return c;
                    }
                },
                CharSet::Ranges(ranges) => {
                    let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
                    let mut k = rng.gen_range(0..total);
                    for &(lo, hi) in ranges {
                        let n = hi as u32 - lo as u32 + 1;
                        if k < n {
                            // Skip the surrogate gap if a wide range
                            // crosses it (none of our patterns do).
                            return char::from_u32(lo as u32 + k).unwrap_or(lo);
                        }
                        k -= n;
                    }
                    unreachable!("sample index within total")
                }
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<Part> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut parts = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '.' => {
                    i += 1;
                    CharSet::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            assert!(lo <= hi, "bad char class range {lo}-{hi}");
                            ranges.push((lo, hi));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                    i += 1; // consume ']'
                    CharSet::Ranges(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    CharSet::Ranges(vec![(c, c)])
                }
                c => {
                    i += 1;
                    CharSet::Ranges(vec![(c, c)])
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unterminated {} quantifier")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((a, b)) => (
                                a.trim().parse().expect("quantifier lower bound"),
                                b.trim().parse().expect("quantifier upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("quantifier count");
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 32)
                    }
                    '+' => {
                        i += 1;
                        (1, 32)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad quantifier {{{min},{max}}} in {pattern:?}");
            parts.push(Part { set, min, max });
        }
        parts
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for part in parse_pattern(self) {
                let n = rng.gen_range(part.min..=part.max);
                for _ in 0..n {
                    out.push(part.set.sample(rng));
                }
            }
            out
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range for collection::vec");
        VecStrategy { element, size }
    }
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running [`test_runner::cases`] cases with fresh inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let (mut rng, seed) = $crate::test_runner::rng_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let cases = $crate::test_runner::cases();
            for case in 0..cases {
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "property `{}` failed at case {case}/{cases} (seed {seed}):\n{e}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::strategy::Union::single($first)$(.or($rest))*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_stay_in_bounds() {
        let (mut rng, _) = rng_for("ranges_stay_in_bounds");
        for _ in 0..500 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1u16..=128).generate(&mut rng);
            assert!((1..=128).contains(&w));
        }
    }

    #[test]
    fn dot_pattern_respects_length_and_excludes_newline() {
        let (mut rng, _) = rng_for("dot_pattern");
        for _ in 0..200 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn char_class_pattern_is_printable_ascii() {
        let (mut rng, _) = rng_for("char_class");
        for _ in 0..200 {
            let s = "[ -~]{1,80}".generate(&mut rng);
            let n = s.chars().count();
            assert!((1..=80).contains(&n));
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literal_and_quantifier_forms() {
        let (mut rng, _) = rng_for("literal_quant");
        let s = "ab{3}c?".generate(&mut rng);
        assert!(s.starts_with("abbb"));
        assert!(s.len() == 4 || s.len() == 5);
    }

    #[test]
    fn oneof_only_yields_listed_values() {
        let s = prop_oneof![Just(1u16), Just(8), Just(64)];
        let (mut rng, _) = rng_for("oneof");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!([1, 8, 64].contains(&v));
        }
    }

    #[test]
    fn vec_strategy_obeys_size() {
        let s = crate::collection::vec(0usize..20, 0..40);
        let (mut rng, _) = rng_for("vec");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 40);
            assert!(v.iter().all(|&x| x < 20));
        }
    }

    proptest! {
        /// The macro itself: bindings, tuple patterns, early return.
        #[test]
        fn macro_smoke((a, b) in (0u8..10, 0u8..10), c in any::<bool>()) {
            if c {
                return Ok(());
            }
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
        }
    }
}
